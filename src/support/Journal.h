//===--- Journal.h - Resumable batch-run journal ----------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch driver's crash-/kill-resumable run journal: an append-only
/// JSONL file recording one line per completed file, preceded by a header
/// line carrying a checksum of the corpus (the ordered list of input
/// names) and a fingerprint of the invocation's FlagSet. A later `--resume`
/// run re-reads the journal, verifies both so results are never replayed
/// onto a different corpus or a different checking policy, and skips files
/// that already have a valid entry.
///
/// Robustness model: a run can be killed at any byte. Lines are written
/// with a single flushed append each, so at most the final line can be
/// truncated; parsing is therefore strict per line (a line either parses
/// completely or is discarded and counted) and tolerant across lines.
/// Resume compacts the journal — header plus surviving entries are
/// rewritten before new entries are appended — so a trailing partial line
/// can never corrupt the first appended entry of the resumed run.
///
/// Format (one JSON object per line, no pretty-printing):
///
///   {"memlint_journal":1,"corpus":"<fnv1a64 hex>","files":12,
///    "flags":"<fnv1a64 hex>"}
///   {"file":"a.c","status":"ok","attempts":1,"anomalies":2,
///    "suppressed":0,"wall_ms":1.25,"reasons":[],"diags":"a.c:3: ...\n",
///    "classes":{"mustfree":1,"nullderef":1},
///    "metrics":{"counters":{"check.functions":3},"timers_ms":{...}}}
///
/// "status" is one of "ok", "degraded", "timeout", "crash" (see
/// driver/BatchDriver.h). "diags" carries the file's rendered diagnostics
/// so a resumed run can replay output without re-checking. "metrics" is
/// present only when the run collected metrics (see support/Metrics.h); it
/// carries the file's counters and phase timings so a resumed run can
/// still aggregate a complete --metrics-out summary. "flags" is present in
/// headers written since the check service landed; journals without it are
/// treated as unverifiable and rejected by --resume.
///
/// The single-line JSON scanner that backs the parser (JsonLineParser) is
/// exposed here because the check service's persistent result cache
/// (service/ResultCache.h) and the service request protocol reuse it.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_JOURNAL_H
#define MEMLINT_SUPPORT_JOURNAL_H

#include "support/Metrics.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace memlint {

/// One completed file's outcome as recorded in (or loaded from) a journal.
struct JournalEntry {
  std::string File;
  std::string Status; ///< "ok" | "degraded" | "timeout" | "crash"
  std::vector<std::string> Reasons; ///< degradation reasons, sorted
  unsigned Attempts = 1;
  unsigned Anomalies = 0;
  unsigned Suppressed = 0;
  double WallMs = 0;
  std::string Diagnostics;  ///< rendered diagnostic text
  /// Anomaly counts by check-class flag name ("mustfree", "usereleased",
  /// ...). Journaled so a resumed differential run can still classify each
  /// file's findings per class without re-parsing rendered text. Emitted
  /// only when non-empty, preserving the historical byte format.
  std::map<std::string, unsigned> Classes;
  MetricsSnapshot Metrics;  ///< per-file metrics; empty when not collected
  /// The file's inferred annotated interface (CheckResult::InferredHeader).
  /// Journaled so a resumed `-infer` run reassembles a byte-identical
  /// combined header without re-checking. Emitted only when non-empty,
  /// preserving the historical byte format.
  std::string Inferred;
};

/// Everything recovered from a journal file, however damaged.
struct JournalContents {
  bool HeaderValid = false; ///< first line parsed as a journal header
  std::string Checksum;     ///< the header's corpus checksum
  /// The header's FlagSet fingerprint; empty for journals written before
  /// the fingerprint was recorded (such journals cannot be verified
  /// against the current invocation and are rejected by --resume).
  std::string FlagsFingerprint;
  unsigned long FileCount = 0; ///< the header's file count
  std::vector<JournalEntry> Entries; ///< entry lines that parsed completely
  unsigned CorruptLines = 0; ///< non-empty lines discarded as unparsable
};

/// FNV-1a 64-bit over every string (each terminated by an NUL separator so
/// {"ab","c"} and {"a","bc"} differ), rendered as 16 hex digits. Used to
/// fingerprint the corpus in the journal header and file contents in the
/// result cache.
std::string fnv1aHex(const std::vector<std::string> &Parts);

/// CRC-32 (IEEE 802.3 polynomial) of \p Text, rendered as 8 hex digits.
/// The result cache stamps every persisted entry with this so bit rot and
/// partial overwrites are detected on load, independently of line framing.
std::string crc32Hex(const std::string &Text);

/// Renders the journal header line (no trailing newline). When
/// \p FlagsFingerprint is non-empty it is recorded as the "flags" field;
/// the empty default preserves the historical byte format for callers that
/// do not carry a FlagSet (tests, tools).
std::string journalHeaderLine(const std::string &CorpusChecksum,
                              unsigned long FileCount,
                              const std::string &FlagsFingerprint = "");

/// Renders one entry line (no trailing newline).
std::string journalEntryLine(const JournalEntry &Entry);

/// Parses journal text, salvaging every intact line. Never throws; damage
/// (truncated tails, garbage bytes, malformed lines anywhere in the file)
/// is skipped and reported via HeaderValid/CorruptLines, never fatal.
JournalContents parseJournal(const std::string &Text);

/// Reads a whole file. \returns nullopt if it cannot be opened.
std::optional<std::string> readFileText(const std::string &Path);

/// Replaces a file's contents. \returns false on I/O failure.
bool writeFileText(const std::string &Path, const std::string &Text);

/// Replaces a file's contents atomically: writes to a sibling temp file
/// (\p Path + ".tmp.<pid>"), flushes, then renames over \p Path. A run
/// killed mid-write can leave a stale temp file behind but never a torn
/// \p Path — readers see the old contents or the new, nothing in between.
/// Used for --metrics-out / --trace-out. \returns false on I/O failure
/// (the temp file is removed on the failure paths that reach it).
bool writeFileTextAtomic(const std::string &Path, const std::string &Text);

/// Probes that \p Path will be writable later without disturbing existing
/// contents: creates and removes a sibling temp file
/// (\p Path + ".preflight.<pid>") in the same directory, exactly where
/// writeFileTextAtomic will later place its temp file. Used by the tool to
/// fail fast on unwritable --*-out destinations before any checking
/// starts. \returns false when the directory is missing or unwritable.
bool preflightWritePath(const std::string &Path);

/// Appends \p Line plus a newline and flushes, so a kill after the call
/// loses at most in-flight lines of other writers. \returns false on I/O
/// failure.
bool appendJournalLine(const std::string &Path, const std::string &Line);

//===--- single-line JSON scanning -----------------------------------------===//

/// A strict scanner for the JSON objects the journal-format files emit:
/// string keys mapping to strings, numbers, arrays of strings, or
/// (depth-limited) nested objects of the same shape. Any deviation —
/// truncation, garbage, excessive nesting, trailing bytes — fails the
/// whole line, which is what makes per-line salvage sound: a line either
/// parses completely or is discarded.
///
/// Shared by the batch journal, the check service's result cache, and the
/// service request protocol.
class JsonLineParser {
public:
  explicit JsonLineParser(const std::string &Text) : Text(Text) {}

  struct Value {
    enum Kind { String, Number, StringArray, Object } K = Number;
    std::string Str;
    double Num = 0;
    std::vector<std::string> Array;
    /// Sub-fields in source order (K == Object). Recursion is bounded by
    /// MaxObjectDepth, so hostile deep nesting fails instead of recursing.
    std::vector<std::pair<std::string, Value>> Fields;

    /// \returns the sub-field named \p Name, or null (Object kind only).
    const Value *field(const std::string &Name) const {
      for (const auto &[Key, V] : Fields)
        if (Key == Name)
          return &V;
      return nullptr;
    }
  };

  /// Parses the full line as one object; \p OnField is called per
  /// top-level field. \returns false if the line is not a complete
  /// well-formed object.
  bool
  parseObject(const std::function<void(const std::string &, const Value &)>
                  &OnField);

private:
  /// Lines nest at most three levels ({entry} > metrics > counters); one
  /// spare level keeps the format extensible without admitting unbounded
  /// recursion.
  static constexpr unsigned MaxObjectDepth = 4;

  bool parseValue(Value &V, unsigned Depth);
  bool parseString(std::string &Out);
  bool parseNumber(double &Out);
  void skipSpace();
  bool eat(char C);
  bool atEnd();

  const std::string &Text;
  size_t Pos = 0;
};

/// Renders a MetricsSnapshot as the journal's compact "metrics" object
/// ({"counters":{...},"timers_ms":{...}}) — the byte format journal entry
/// lines and cache entry lines embed. Histograms, when present, are
/// encoded as one wire string per name ("histograms":{"name":"c|b:n ..."},
/// see histogramToWire) so the object stays within JsonLineParser's
/// nesting budget; the section is omitted when empty, preserving the
/// historical byte format.
std::string metricsJsonCompact(const MetricsSnapshot &Snapshot);

/// Reads a journal-format "metrics" object back into a snapshot. Unknown
/// sub-fields are ignored; non-numeric leaves are skipped (the line
/// already parsed, so this is shape-tolerant by design).
void metricsFromJsonValue(const JsonLineParser::Value &V,
                          MetricsSnapshot &Out);

} // namespace memlint

#endif // MEMLINT_SUPPORT_JOURNAL_H
