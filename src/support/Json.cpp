//===--- Json.cpp - Minimal JSON emission helpers -------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>

using namespace memlint;

std::string memlint::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (U < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string memlint::jsonString(const std::string &S) {
  return "\"" + jsonEscape(S) + "\"";
}

std::string memlint::jsonMs(double Ms) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Ms < 0 ? 0.0 : Ms);
  return Buf;
}
