//===--- Json.h - Minimal JSON emission helpers -----------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiny JSON-emission subset shared by every machine-readable output in
/// the tree: the batch journal (support/Journal), the structured findings
/// emitters (support/FindingsOutput), and the metrics summaries
/// (support/Metrics). Emission only covers what those formats need —
/// strings, non-negative integers, and fixed-point milliseconds — and is
/// locale-independent by construction.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_JSON_H
#define MEMLINT_SUPPORT_JSON_H

#include <string>

namespace memlint {

/// Escapes \p S for inclusion inside a JSON string literal (control chars,
/// quote, backslash; everything else passes through byte-for-byte).
std::string jsonEscape(const std::string &S);

/// Renders \p S as a quoted, escaped JSON string.
std::string jsonString(const std::string &S);

/// Renders a millisecond quantity with two decimals (locale-independent;
/// negative inputs clamp to 0). Two decimals is plenty for wall-clock
/// timings and keeps lines short.
std::string jsonMs(double Ms);

} // namespace memlint

#endif // MEMLINT_SUPPORT_JSON_H
