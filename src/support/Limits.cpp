//===--- Limits.cpp - Resource budgets for a check run ----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Limits.h"

#include "support/FaultInjector.h"

using namespace memlint;

const std::vector<LimitSpec> &memlint::limitSpecs() {
  static const std::vector<LimitSpec> Specs = {
      {"limittokens", &ResourceBudget::MaxTokens,
       "max preprocessed tokens per run (0 = unlimited)"},
      {"limitnesting", &ResourceBudget::MaxNestingDepth,
       "max parser / expression-checker recursion depth"},
      {"limitstmts", &ResourceBudget::MaxStmtsPerFunction,
       "max statements analyzed per function"},
      {"limitsplits", &ResourceBudget::MaxEnvSplitsPerFunction,
       "max environment splits at confluences per function"},
      {"limitrefdepth", &ResourceBudget::MaxRefAliasDepth,
       "max alias-expansion path depth in the environment"},
      {"limitclassdiags", &ResourceBudget::MaxDiagsPerClass,
       "max diagnostics kept per check class"},
      {"limitdiags", &ResourceBudget::MaxDiagsTotal,
       "max diagnostics kept overall"},
  };
  return Specs;
}

const LimitSpec *memlint::findLimitSpec(const std::string &Name) {
  for (const LimitSpec &Spec : limitSpecs())
    if (Name == Spec.Name)
      return &Spec;
  return nullptr;
}

void BudgetState::pollFaults() { Faults->onCheckpoint(*this); }
