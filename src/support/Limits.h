//===--- Limits.h - Resource budgets for a check run ------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker is meant to run unattended inside a development cycle, on
/// arbitrary and often ill-formed input. ResourceBudget bounds every
/// dimension in which a hostile or merely enormous program could make the
/// pipeline hang, smash the stack, or flood the user: tokens consumed,
/// recursion depth, statements analyzed per function, environment copies at
/// confluences, and diagnostics emitted (per check class and overall).
///
/// Each budget is exposed as a "-limit*" flag (see FlagSet) so it can be set
/// from the command line exactly like a check toggle. Exceeding a budget is
/// never an error: checking degrades — the run keeps every diagnostic
/// produced so far, emits a single notice naming the exhausted limit, and
/// the CheckResult carries CheckStatus::Degraded.
///
/// BudgetState carries the run-wide mutable counters charged against one
/// budget, plus the record of which limits were hit (the degradation
/// reasons) and whether an internal error was contained along the way.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_LIMITS_H
#define MEMLINT_SUPPORT_LIMITS_H

#include "support/Cancel.h"

#include <string>
#include <vector>

namespace memlint {

class FaultInjector;

/// Hard bounds on one check run. A value of 0 means "unlimited" for that
/// dimension. Defaults are far above anything a legitimate translation unit
/// needs, but low enough that hostile input cannot hang the tool or smash
/// the stack.
struct ResourceBudget {
  /// Tokens consumed from the preprocessor (post macro expansion), whole
  /// run. Bounds runaway macro expansion and enormous inputs.
  unsigned MaxTokens = 10'000'000;
  /// Recursion depth in the parser and the expression checker. Bounds stack
  /// use on deeply nested input ("(((((...").
  unsigned MaxNestingDepth = 512;
  /// Statements abstractly executed per function body (loop bodies and
  /// branches re-visit statements, so this is an execution count, not a
  /// source count).
  unsigned MaxStmtsPerFunction = 50'000;
  /// Environment copies made at control-flow splits per function. Bounds
  /// the state explosion of branch-heavy functions.
  unsigned MaxEnvSplitsPerFunction = 20'000;
  /// Alias-expansion rewrite depth in the environment: rewrites of a
  /// reference through aliased prefixes longer than this are dropped
  /// (Env::expansions). Bounds the blowup of chained alias substitution on
  /// deeply linked structures.
  unsigned MaxRefAliasDepth = 6;
  /// Diagnostics kept per check class; beyond this, messages of the class
  /// are counted and summarized in one line (LCLint's message-count
  /// behavior).
  unsigned MaxDiagsPerClass = 500;
  /// Diagnostics kept overall.
  unsigned MaxDiagsTotal = 5'000;

  friend bool operator==(const ResourceBudget &,
                         const ResourceBudget &) = default;
};

/// Registry entry tying a "-limit*" flag name to a ResourceBudget field.
struct LimitSpec {
  const char *Name; ///< flag name, e.g. "limittokens"
  unsigned ResourceBudget::*Field;
  const char *Help;
};

/// All registered limit flags, in a stable order.
const std::vector<LimitSpec> &limitSpecs();

/// \returns the spec for \p Name, or null if it is not a limit flag.
const LimitSpec *findLimitSpec(const std::string &Name);

/// \returns true if a count of \p Used has exhausted \p Limit (0 = never).
inline bool limitExhausted(unsigned long Used, unsigned Limit) {
  return Limit != 0 && Used >= Limit;
}

/// Mutable per-run state charged against a ResourceBudget, shared by every
/// pipeline stage of one check run. Also the collection point for
/// degradation reasons and contained internal errors, from which the facade
/// computes the run's CheckStatus.
class BudgetState {
public:
  explicit BudgetState(const ResourceBudget &Budget) : Budget(Budget) {}

  const ResourceBudget &budget() const { return Budget; }

  /// Attaches a cooperative-cancellation token. Every budget checkpoint
  /// doubles as a cancellation checkpoint: once the token is raised the
  /// next checkpoint throws CancelledError, which the checking facade
  /// converts into a Degraded result carrying the token's reason. Pass
  /// null (the default state) for zero cancellation overhead.
  void setCancelToken(CancelToken *Token) { Cancel = Token; }
  CancelToken *cancelToken() const { return Cancel; }

  /// Attaches a deterministic fault injector (see support/FaultInjector.h).
  /// Every checkpoint is then also a potential fault site; the injector
  /// fires its armed fault at exactly one of them. Null (the default) costs
  /// a single pointer test per checkpoint.
  void setFaultInjector(FaultInjector *Injector) { Faults = Injector; }
  FaultInjector *faultInjector() const { return Faults; }

  /// Cancellation checkpoint: throws CancelledError if the attached token
  /// has been raised. Call sites are exactly the budget charge points, so
  /// cancellation latency is bounded by the work between two charges. An
  /// attached FaultInjector observes every checkpoint first, so an injected
  /// cancellation is taken on the same poll that would notice a watchdog.
  void checkCancelled() {
    if (Faults)
      pollFaults();
    if (Cancel && Cancel->check())
      throw CancelledError{Cancel->reason()};
  }

  /// Marks every budget dimension exhausted from now on (fault injection's
  /// Budget fault): later takeToken/exhaustion queries report empty and the
  /// run degrades through its ordinary partial-result paths. \p Reason is
  /// recorded so the run is Degraded even if no later query runs.
  void forceBudgetExhausted(const std::string &Reason) {
    ForcedExhausted = true;
    noteDegradation(Reason);
  }

  /// True once forceBudgetExhausted() ran; budget charge points outside
  /// this class (statement/split counters) consult it alongside their own
  /// limits.
  bool budgetForcedExhausted() const { return ForcedExhausted; }

  /// Charges one preprocessed token. \returns false once the token budget
  /// is exhausted; callers should stop consuming input. Doubles as a
  /// cancellation checkpoint (throws CancelledError when cancelled).
  bool takeToken() {
    checkCancelled();
    if (ForcedExhausted || limitExhausted(Tokens, Budget.MaxTokens)) {
      noteDegradation("limittokens");
      return false;
    }
    ++Tokens;
    return true;
  }

  bool tokensExhausted() const {
    return ForcedExhausted || limitExhausted(Tokens, Budget.MaxTokens);
  }

  /// Tokens still chargeable before the budget exhausts; ULONG_MAX when
  /// the dimension is unlimited. The front-end cache's replay pre-check:
  /// a memoized expansion is only replayed when every one of its tokens
  /// fits, so budget truncation always takes the live path and keeps its
  /// exact mid-stream semantics.
  unsigned long tokensRemaining() const {
    if (ForcedExhausted)
      return 0;
    if (Budget.MaxTokens == 0)
      return static_cast<unsigned long>(-1);
    return Tokens >= Budget.MaxTokens ? 0 : Budget.MaxTokens - Tokens;
  }

  /// Tokens charged so far (observability; see support/Metrics.h).
  unsigned long tokensUsed() const { return Tokens; }

  /// Records that a limit was exceeded and checking degraded. \p Reason is
  /// the limit's flag name. Deduplicated; order of first occurrence kept.
  void noteDegradation(const std::string &Reason) {
    for (const std::string &R : Reasons)
      if (R == Reason)
        return;
    Reasons.push_back(Reason);
  }

  /// Records an internal error that was contained (converted into a
  /// diagnostic instead of escaping the facade).
  void noteInternalError() { InternalErrors = true; }

  bool degraded() const { return !Reasons.empty(); }
  bool internalError() const { return InternalErrors; }
  const std::vector<std::string> &degradationReasons() const {
    return Reasons;
  }

private:
  /// Out-of-line so this header does not depend on FaultInjector.h (which
  /// includes it back); simply forwards to Faults->onCheckpoint(*this).
  void pollFaults();

  ResourceBudget Budget;
  unsigned long Tokens = 0;
  std::vector<std::string> Reasons;
  bool InternalErrors = false;
  bool ForcedExhausted = false;
  CancelToken *Cancel = nullptr;
  FaultInjector *Faults = nullptr;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_LIMITS_H
