//===--- Metrics.cpp - Phase metrics for check runs -----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

using namespace memlint;

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Ms] : Other.TimersMs)
    TimersMs[Name] += Ms;
}

std::string MetricsSnapshot::json(const std::string &Indent,
                                  bool SkipTimers) const {
  std::string Out = "{\n";
  Out += Indent + "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += Indent + "    " + jsonString(Name) + ": " + std::to_string(Value);
  }
  Out += First ? "}" : "\n" + Indent + "  }";
  if (!SkipTimers) {
    Out += ",\n" + Indent + "  \"timers_ms\": {";
    First = true;
    for (const auto &[Name, Ms] : TimersMs) {
      Out += First ? "\n" : ",\n";
      First = false;
      Out += Indent + "    " + jsonString(Name) + ": " + jsonMs(Ms);
    }
    Out += First ? "}" : "\n" + Indent + "  }";
  }
  Out += "\n" + Indent + "}";
  return Out;
}
