//===--- Metrics.cpp - Phase metrics for check runs -----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace memlint;

unsigned memlint::metricsHistogramBucket(double Ms) {
  if (!(Ms > 0))
    return 0;
  const double Micros = Ms * 1000.0;
  if (Micros < 1.0)
    return 0;
  // Guard the double->integer conversion before the bit scan: anything at
  // or beyond 2^MaxBucket us clamps into the top bucket.
  if (Micros >= static_cast<double>(1ULL << MetricsHistogram::MaxBucket))
    return MetricsHistogram::MaxBucket;
  unsigned long long U = static_cast<unsigned long long>(Micros);
  unsigned Bucket = 0; // bit_width(U): U in [2^(k-1), 2^k) maps to k
  while (U) {
    ++Bucket;
    U >>= 1;
  }
  return Bucket;
}

double memlint::metricsHistogramBucketUpperMs(unsigned Bucket) {
  if (Bucket > MetricsHistogram::MaxBucket)
    Bucket = MetricsHistogram::MaxBucket;
  const unsigned long long UpperMicros = Bucket == 0 ? 1 : (1ULL << Bucket);
  return static_cast<double>(UpperMicros) / 1000.0;
}

void MetricsHistogram::merge(const MetricsHistogram &Other) {
  Count += Other.Count;
  for (const auto &[Bucket, N] : Other.Buckets)
    Buckets[Bucket] += N;
}

double MetricsHistogram::quantileUpperMs(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Rank of the target observation, 1-based: ceil(Q * Count) without
  // floating ceil (Count * Q can exceed double's integer range only far
  // past any realistic observation count).
  unsigned long long Rank = static_cast<unsigned long long>(Q * Count);
  if (static_cast<double>(Rank) < Q * Count)
    ++Rank;
  if (Rank < 1)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  unsigned long long Seen = 0;
  unsigned Last = 0;
  for (const auto &[Bucket, N] : Buckets) {
    Last = Bucket;
    Seen += N;
    if (Seen >= Rank)
      return metricsHistogramBucketUpperMs(Bucket);
  }
  return metricsHistogramBucketUpperMs(Last);
}

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Ms] : Other.TimersMs)
    TimersMs[Name] += Ms;
  for (const auto &[Name, Hist] : Other.Histograms)
    Histograms[Name].merge(Hist);
}

namespace {

/// Quantile boundaries need a third decimal (1 us == 0.001 ms); jsonMs's
/// two decimals would round the whole low end to 0.00.
std::string jsonMs3(double Ms) {
  if (Ms < 0)
    Ms = 0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Ms);
  return Buf;
}

} // namespace

std::string memlint::histogramStatsJson(const MetricsHistogram &H) {
  std::string Out = "{\"count\":" + std::to_string(H.Count);
  Out += ",\"p50_ms\":" + jsonMs3(H.quantileUpperMs(0.50));
  Out += ",\"p90_ms\":" + jsonMs3(H.quantileUpperMs(0.90));
  Out += ",\"p99_ms\":" + jsonMs3(H.quantileUpperMs(0.99));
  Out += ",\"buckets\":{";
  bool First = true;
  for (const auto &[Bucket, N] : H.Buckets) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + std::to_string(Bucket) + "\":" + std::to_string(N);
  }
  Out += "}}";
  return Out;
}

std::string MetricsSnapshot::json(const std::string &Indent,
                                  bool SkipTimers) const {
  std::string Out = "{\n";
  Out += Indent + "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += Indent + "    " + jsonString(Name) + ": " + std::to_string(Value);
  }
  Out += First ? "}" : "\n" + Indent + "  }";
  if (!SkipTimers && !Histograms.empty()) {
    Out += ",\n" + Indent + "  \"histograms\": {";
    First = true;
    for (const auto &[Name, Hist] : Histograms) {
      Out += First ? "\n" : ",\n";
      First = false;
      Out += Indent + "    " + jsonString(Name) + ": " +
             histogramStatsJson(Hist);
    }
    Out += First ? "}" : "\n" + Indent + "  }";
  }
  if (!SkipTimers) {
    Out += ",\n" + Indent + "  \"timers_ms\": {";
    First = true;
    for (const auto &[Name, Ms] : TimersMs) {
      Out += First ? "\n" : ",\n";
      First = false;
      Out += Indent + "    " + jsonString(Name) + ": " + jsonMs(Ms);
    }
    Out += First ? "}" : "\n" + Indent + "  }";
  }
  Out += "\n" + Indent + "}";
  return Out;
}

std::string memlint::histogramToWire(const MetricsHistogram &H) {
  std::string Out = std::to_string(H.Count) + "|";
  bool First = true;
  for (const auto &[Bucket, N] : H.Buckets) {
    if (!First)
      Out += " ";
    First = false;
    Out += std::to_string(Bucket) + ":" + std::to_string(N);
  }
  return Out;
}

bool memlint::histogramFromWire(const std::string &Wire, MetricsHistogram &H) {
  H = MetricsHistogram();
  const size_t Bar = Wire.find('|');
  if (Bar == std::string::npos)
    return false;

  // Strict unsigned decimal parse; rejects empty fields, signs, and junk.
  auto ParseULL = [](const std::string &S, size_t Begin, size_t End,
                     unsigned long long &Out) {
    if (Begin >= End)
      return false;
    Out = 0;
    for (size_t I = Begin; I < End; ++I) {
      const char C = S[I];
      if (C < '0' || C > '9')
        return false;
      if (Out > (~0ULL - (C - '0')) / 10)
        return false; // overflow
      Out = Out * 10 + static_cast<unsigned long long>(C - '0');
    }
    return true;
  };

  unsigned long long Count = 0;
  if (!ParseULL(Wire, 0, Bar, Count)) {
    H = MetricsHistogram();
    return false;
  }
  unsigned long long Sum = 0;
  size_t Pos = Bar + 1;
  while (Pos < Wire.size()) {
    size_t End = Wire.find(' ', Pos);
    if (End == std::string::npos)
      End = Wire.size();
    const size_t Colon = Wire.find(':', Pos);
    unsigned long long Bucket = 0, N = 0;
    if (Colon == std::string::npos || Colon >= End ||
        !ParseULL(Wire, Pos, Colon, Bucket) ||
        !ParseULL(Wire, Colon + 1, End, N) ||
        Bucket > MetricsHistogram::MaxBucket || N == 0 ||
        H.Buckets.count(static_cast<unsigned>(Bucket))) {
      H = MetricsHistogram();
      return false;
    }
    H.Buckets[static_cast<unsigned>(Bucket)] = N;
    Sum += N;
    Pos = End + 1;
  }
  if (Sum != Count) { // torn or hand-edited line: refuse, don't guess
    H = MetricsHistogram();
    return false;
  }
  H.Count = Count;
  return true;
}

unsigned long long memlint::peakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<unsigned long long>(Usage.ru_maxrss) / 1024; // bytes
#else
  return static_cast<unsigned long long>(Usage.ru_maxrss); // KiB
#endif
#else
  return 0;
#endif
}
