//===--- Metrics.h - Phase metrics for check runs ---------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's data model: a registry of named counters and
/// accumulated phase timers collected during a check run. The paper's
/// evaluation (Sections 6-7) is about triaging tool output at scale —
/// counting messages and measuring checking time on real programs — and
/// this is the infrastructure that records those numbers.
///
/// Design constraints, in order:
///
/// * Near-zero cost when disabled. Collection is opt-in
///   (CheckOptions::CollectMetrics); every instrumentation point is guarded
///   by a null registry pointer, and ScopedTimer does not even read the
///   clock when handed a null registry. The disabled path costs one
///   predictable branch per phase boundary, verified by
///   bench_observability_overhead.
/// * Deterministic aggregation. Counters are exact and identical across
///   job counts and runs; folding snapshots in a fixed (input) order with
///   merge() keeps even the floating-point timer sums bit-identical for a
///   given set of per-file values. Keys are kept in ordered maps so every
///   rendering is canonically sorted.
/// * Tiny surface. A metric is a name; there is no registration step, no
///   typed handles, no threads. One registry belongs to one check run
///   (the batch driver gives each worker its own and merges afterwards).
///
/// Naming convention (dots group related metrics, stable across PRs):
///   phase.lex / phase.pp / phase.parse / phase.sema / phase.check  timers
///   check.function      accumulated per-function check time (timer)
///   check.functions / check.stmts / check.splits           counters
///   lex.tokens / pp.tokens                                 counters
///   pp.include_cache.hit/.miss/.bytes_saved   front-end memo (DESIGN §5c)
///   vfs.read.hit / vfs.read.miss              batch read-cache counters
///   lex.intern.hit / lex.intern.miss          shared spelling interner
///   diags.stored / diags.suppressed / diags.overflow       counters
///   env.*   copy-on-write environment counters (folded from +stats)
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_METRICS_H
#define MEMLINT_SUPPORT_METRICS_H

#include "support/MonotonicTime.h"

#include <map>
#include <string>

namespace memlint {

/// An immutable-ish bag of named counters and timer totals: the result of
/// one run's collection, or the deterministic fold of many.
struct MetricsSnapshot {
  std::map<std::string, unsigned long long> Counters;
  std::map<std::string, double> TimersMs;

  bool empty() const { return Counters.empty() && TimersMs.empty(); }

  /// Folds \p Other into this snapshot: counters and timer totals add.
  /// Folding a sequence of snapshots in a fixed order is deterministic
  /// (identical inputs give bit-identical sums).
  void merge(const MetricsSnapshot &Other);

  /// Renders the snapshot as a two-section JSON object:
  ///   {"counters":{...},"timers_ms":{...}}
  /// Keys are sorted (map order). Counter values are exact and
  /// deterministic; timer values are wall clock and vary run to run, so
  /// consumers comparing runs should compare the "counters" section.
  /// \p Indent prefixes every line for embedding in a larger document;
  /// pass SkipTimers to get a fully deterministic rendering.
  std::string json(const std::string &Indent = "",
                   bool SkipTimers = false) const;
};

/// The collection point one check run writes into. Instrumentation sites
/// hold a MetricsRegistry* that is null when collection is off; the
/// convention is to guard every use with that null check (see ScopedTimer).
class MetricsRegistry {
public:
  /// Bumps counter \p Name by \p Delta.
  void addCounter(const std::string &Name, unsigned long long Delta = 1) {
    Snap.Counters[Name] += Delta;
  }

  /// Adds \p Ms to timer \p Name's accumulated total.
  void addTimeMs(const std::string &Name, double Ms) {
    Snap.TimersMs[Name] += Ms < 0 ? 0 : Ms;
  }

  const MetricsSnapshot &snapshot() const { return Snap; }
  MetricsSnapshot takeSnapshot() { return std::move(Snap); }

private:
  MetricsSnapshot Snap;
};

/// RAII phase timer: charges the elapsed wall clock (monotonic) to a named
/// timer on destruction. With a null registry it is fully inert — the clock
/// is never read — so instrumentation sites can be written unconditionally.
class ScopedTimer {
public:
  ScopedTimer(MetricsRegistry *Registry, const char *Name)
      : Registry(Registry), Name(Name),
        StartMs(Registry ? monotonicNowMs() : 0) {}
  ~ScopedTimer() {
    if (Registry)
      Registry->addTimeMs(Name, monotonicNowMs() - StartMs);
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  MetricsRegistry *Registry;
  const char *Name;
  double StartMs;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_METRICS_H
