//===--- Metrics.h - Phase metrics for check runs ---------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's data model: a registry of named counters and
/// accumulated phase timers collected during a check run. The paper's
/// evaluation (Sections 6-7) is about triaging tool output at scale —
/// counting messages and measuring checking time on real programs — and
/// this is the infrastructure that records those numbers.
///
/// Design constraints, in order:
///
/// * Near-zero cost when disabled. Collection is opt-in
///   (CheckOptions::CollectMetrics); every instrumentation point is guarded
///   by a null registry pointer, and ScopedTimer does not even read the
///   clock when handed a null registry. The disabled path costs one
///   predictable branch per phase boundary, verified by
///   bench_observability_overhead.
/// * Deterministic aggregation. Counters are exact and identical across
///   job counts and runs; folding snapshots in a fixed (input) order with
///   merge() keeps even the floating-point timer sums bit-identical for a
///   given set of per-file values. Keys are kept in ordered maps so every
///   rendering is canonically sorted.
/// * Tiny surface. A metric is a name; there is no registration step, no
///   typed handles, no threads. One registry belongs to one check run
///   (the batch driver gives each worker its own and merges afterwards).
///
/// Naming convention (dots group related metrics, stable across PRs):
///   phase.lex / phase.pp / phase.parse / phase.sema / phase.check  timers
///   check.function      accumulated per-function check time (timer)
///   check.functions / check.stmts / check.splits           counters
///   lex.tokens / pp.tokens                                 counters
///   pp.include_cache.hit/.miss/.bytes_saved   front-end memo (DESIGN §5c)
///   vfs.read.hit / vfs.read.miss              batch read-cache counters
///   lex.intern.hit / lex.intern.miss          shared spelling interner
///   diags.stored / diags.suppressed / diags.overflow       counters
///   env.*   copy-on-write environment counters (folded from +stats)
///   hist.check.function          latency histogram, one function's check
///   hist.batch.file              latency histogram, one file incl. retries
///   hist.pp.include_cache.lookup latency histogram, front-end memo lookup
///   hist.service.queue_wait      latency histogram, enqueue -> dequeue
///   hist.service.check           latency histogram, service check requests
///   service.queue_depth / service.uptime_ms   point-in-time stats gauges
///   mem.peak_rss_kb              peak resident set size (stats gauge)
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_METRICS_H
#define MEMLINT_SUPPORT_METRICS_H

#include "support/MonotonicTime.h"

#include <map>
#include <string>

namespace memlint {

/// Maps a latency in milliseconds to its fixed log2 histogram bucket.
/// Bucket 0 holds sub-microsecond observations; bucket i (i >= 1) holds
/// [2^(i-1), 2^i) microseconds; values past ~2^40 us (== 2^40 clamps, about
/// 12 days) land in the top bucket. Pure integer bit math after the
/// us conversion, so the mapping is exact and platform-independent.
unsigned metricsHistogramBucket(double Ms);

/// Inclusive upper boundary of \p Bucket in milliseconds: 1 us for bucket
/// 0, 2^Bucket us otherwise. Quantile estimates report this boundary so
/// they are conservative (never under-report a latency).
double metricsHistogramBucketUpperMs(unsigned Bucket);

/// A fixed-boundary log2 latency histogram. Bucket counts are exact
/// integers keyed by bucket index in an ordered map, so merging two
/// histograms (per-bucket addition) is associative, commutative, and
/// deterministic: folding per-file snapshots in any order yields identical
/// counts, and j1 == jN holds whenever the per-file observations match.
struct MetricsHistogram {
  /// Top bucket index; observations past its lower bound clamp into it.
  static constexpr unsigned MaxBucket = 40;

  unsigned long long Count = 0;
  std::map<unsigned, unsigned long long> Buckets;

  void record(double Ms) {
    ++Count;
    ++Buckets[metricsHistogramBucket(Ms)];
  }

  /// Folds \p Other into this histogram (exact per-bucket addition).
  void merge(const MetricsHistogram &Other);

  /// Upper-boundary estimate of the \p Q quantile (0 < Q <= 1) in
  /// milliseconds: the boundary of the bucket containing the ceil(Q*Count)
  /// ranked observation. Returns 0 for an empty histogram.
  double quantileUpperMs(double Q) const;
};

/// An immutable-ish bag of named counters, timer totals, and latency
/// histograms: the result of one run's collection, or the deterministic
/// fold of many.
struct MetricsSnapshot {
  std::map<std::string, unsigned long long> Counters;
  std::map<std::string, double> TimersMs;
  std::map<std::string, MetricsHistogram> Histograms;

  bool empty() const {
    return Counters.empty() && TimersMs.empty() && Histograms.empty();
  }

  /// Folds \p Other into this snapshot: counters, timer totals, and
  /// histogram buckets add. Folding a sequence of snapshots in a fixed
  /// order is deterministic (identical inputs give bit-identical sums);
  /// counters and histogram buckets are exact integers, so their fold is
  /// order-independent as well.
  void merge(const MetricsSnapshot &Other);

  /// Renders the snapshot as JSON:
  ///   {"counters":{...},"histograms":{...},"timers_ms":{...}}
  /// Keys are sorted (map order). The "histograms" section appears only
  /// when at least one histogram exists (older outputs stay byte-stable);
  /// each histogram renders its exact bucket counts plus derived
  /// p50/p90/p99 upper-bound estimates in milliseconds. Counter values and
  /// bucket counts are exact and deterministic; timer values and quantiles
  /// are wall clock and vary run to run, so consumers comparing runs
  /// should compare the "counters" section. \p Indent prefixes every line
  /// for embedding in a larger document; pass SkipTimers to get a fully
  /// deterministic rendering (drops timers and histograms).
  std::string json(const std::string &Indent = "",
                   bool SkipTimers = false) const;
};

/// One histogram as a single-line JSON object — exact bucket counts plus
/// derived upper-bound quantiles:
///   {"count":12,"p50_ms":0.128,"p90_ms":0.512,"p99_ms":0.512,
///    "buckets":{"7":4,"8":8}}
/// Shared by MetricsSnapshot::json and the service's stats exposition.
std::string histogramStatsJson(const MetricsHistogram &H);

/// Compact single-string wire encoding of a histogram for line-oriented
/// formats (journal entries, cache metrics) whose parser caps object
/// nesting: "<count>|<bucket>:<n> <bucket>:<n> ...", buckets ascending.
std::string histogramToWire(const MetricsHistogram &H);

/// Parses histogramToWire output. \returns false (leaving \p H empty) on
/// any malformed input — callers degrade by dropping the histogram, the
/// same policy journal recovery applies to unparseable metric fields.
bool histogramFromWire(const std::string &Wire, MetricsHistogram &H);

/// Peak resident set size of this process in KiB (getrusage ru_maxrss),
/// or 0 where unsupported. A point-in-time gauge for service stats.
unsigned long long peakRssKb();

/// The collection point one check run writes into. Instrumentation sites
/// hold a MetricsRegistry* that is null when collection is off; the
/// convention is to guard every use with that null check (see ScopedTimer).
class MetricsRegistry {
public:
  /// Bumps counter \p Name by \p Delta.
  void addCounter(const std::string &Name, unsigned long long Delta = 1) {
    Snap.Counters[Name] += Delta;
  }

  /// Adds \p Ms to timer \p Name's accumulated total.
  void addTimeMs(const std::string &Name, double Ms) {
    Snap.TimersMs[Name] += Ms < 0 ? 0 : Ms;
  }

  /// Records one observation into latency histogram \p Name.
  void recordLatencyMs(const std::string &Name, double Ms) {
    Snap.Histograms[Name].record(Ms);
  }

  const MetricsSnapshot &snapshot() const { return Snap; }
  MetricsSnapshot takeSnapshot() { return std::move(Snap); }

private:
  MetricsSnapshot Snap;
};

/// RAII phase timer: charges the elapsed wall clock (monotonic) to a named
/// timer on destruction. With a null registry it is fully inert — the clock
/// is never read — so instrumentation sites can be written unconditionally.
class ScopedTimer {
public:
  ScopedTimer(MetricsRegistry *Registry, const char *Name)
      : Registry(Registry), Name(Name),
        StartMs(Registry ? monotonicNowMs() : 0) {}
  ~ScopedTimer() {
    if (Registry)
      Registry->addTimeMs(Name, monotonicNowMs() - StartMs);
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  MetricsRegistry *Registry;
  const char *Name;
  double StartMs;
};

/// RAII latency probe: one clock-read pair charges the elapsed time to an
/// accumulated timer (aggregate view) AND records it into a histogram
/// (distribution view). Same null-registry inertness as ScopedTimer.
class ScopedLatency {
public:
  ScopedLatency(MetricsRegistry *Registry, const char *TimerName,
                const char *HistName)
      : Registry(Registry), TimerName(TimerName), HistName(HistName),
        StartMs(Registry ? monotonicNowMs() : 0) {}
  ~ScopedLatency() {
    if (!Registry)
      return;
    const double Ms = monotonicNowMs() - StartMs;
    Registry->addTimeMs(TimerName, Ms);
    Registry->recordLatencyMs(HistName, Ms);
  }
  ScopedLatency(const ScopedLatency &) = delete;
  ScopedLatency &operator=(const ScopedLatency &) = delete;

private:
  MetricsRegistry *Registry;
  const char *TimerName;
  const char *HistName;
  double StartMs;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_METRICS_H
