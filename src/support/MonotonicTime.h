//===--- MonotonicTime.h - Monotonic wall-clock helpers ---------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deadlines and timings in the batch driver must survive system clock
/// adjustments (NTP steps, suspend/resume), so everything time-related is
/// expressed in milliseconds on std::chrono::steady_clock. This header is
/// the single place that choice is made.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_MONOTONICTIME_H
#define MEMLINT_SUPPORT_MONOTONICTIME_H

#include <chrono>

namespace memlint {

/// Milliseconds on the monotonic clock. Only differences are meaningful.
inline double monotonicNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace memlint

#endif // MEMLINT_SUPPORT_MONOTONICTIME_H
