//===--- Rand.h - Deterministic seeded random engine ------------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository's one random engine. Everything that needs randomness —
/// the corpus generators, the fuzzing mutation engine, the fault-injection
/// planner — draws from SplitMix64 seeded explicitly, never from rand(),
/// std::random_device, or address-dependent state. The same Seed therefore
/// yields byte-identical output on every platform, which is what makes
/// fuzzing seeds addressable: a failure reported as seed N can be
/// regenerated exactly, anywhere, forever.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_RAND_H
#define MEMLINT_SUPPORT_RAND_H

#include <cstdint>

namespace memlint {

/// SplitMix64 (Steele/Lea/Flood): tiny, fast, and passes BigCrush for this
/// use. Unlike xorshift it has no weak all-zero state and decorrelates
/// consecutive seeds, so seed N and seed N+1 produce unrelated programs.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform-ish value in [0, N); 0 for N == 0. Modulo bias is irrelevant
  /// at the N (< 2^16) this codebase uses.
  std::uint64_t below(std::uint64_t N) { return N ? next() % N : 0; }

  /// True with probability Percent/100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  std::uint64_t State;
};

/// One-shot mix of two seeds into a new stream seed (used to derive the
/// per-program seed from a campaign base seed and a program index without
/// correlating neighbouring programs).
inline std::uint64_t mixSeed(std::uint64_t A, std::uint64_t B) {
  SplitMix64 R(A ^ (B * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull));
  return R.next();
}

} // namespace memlint

#endif // MEMLINT_SUPPORT_RAND_H
