//===--- SourceLocation.cpp - Interned source file names --------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/SourceLocation.h"

#include <mutex>
#include <unordered_set>

using namespace memlint;

const std::string &SourceLocation::emptyFile() {
  static const std::string Empty;
  return Empty;
}

// Process-global and immortal, so a SourceLocation can never dangle — it
// may be copied into caches (the batch front-end memo, the service result
// cache) that outlive the run that created it. The set is tiny (one entry
// per distinct file name ever seen) and node-based, so element addresses
// are stable under growth. The mutex is cold: hot paths (the lexer
// stamping every token) intern once per file and then construct locations
// from the pointer.
const std::string *memlint::internSourceFileName(const std::string &Name) {
  static std::mutex Mu;
  static std::unordered_set<std::string> Names;
  std::lock_guard<std::mutex> Lock(Mu);
  return &*Names.insert(Name).first;
}
