//===--- SourceLocation.h - Positions in checked source files ---*- C++ -*-===//
//
// Part of memlint, a reimplementation of "Static Detection of Dynamic
// Memory Errors" (Evans, PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types describing positions in user source. Every token,
/// AST node and diagnostic carries a SourceLocation so messages can be
/// reported in the paper's "file.c:line:" style.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_SOURCELOCATION_H
#define MEMLINT_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace memlint {

/// Interns \p Name into the process-global, immortal file-name pool and
/// returns its stable address. Hot producers (the lexer) intern once per
/// file and stamp every token from the pointer.
const std::string *internSourceFileName(const std::string &Name);

/// A position in a named source file. Files are identified by name rather
/// than by an opaque id: the preprocessor can splice many (virtual) files
/// into one token stream and names keep diagnostics self-describing. The
/// name is an interned pointer (see internSourceFileName), so copying a
/// location — done for every token copy in the pipeline — is trivial.
class SourceLocation {
public:
  SourceLocation() = default;
  SourceLocation(const std::string &File, unsigned Line, unsigned Column)
      : File(internSourceFileName(File)), Line(Line), Column(Column) {}
  /// Hot-path form: \p File must come from internSourceFileName (or be
  /// null for "no file").
  SourceLocation(const std::string *File, unsigned Line, unsigned Column)
      : File(File), Line(Line), Column(Column) {}

  /// True if this location refers to a real position in some file.
  bool isValid() const { return Line != 0; }

  const std::string &file() const { return File ? *File : emptyFile(); }
  unsigned line() const { return Line; }
  unsigned column() const { return Column; }

  /// Renders "file.c:12" (the paper's message prefix). Column is kept out of
  /// the rendering to match LCLint's output but retained for tooling.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return file() + ":" + std::to_string(Line);
  }

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.Line == B.Line && A.Column == B.Column &&
           (A.File == B.File || A.file() == B.file());
  }
  friend bool operator!=(const SourceLocation &A, const SourceLocation &B) {
    return !(A == B);
  }

private:
  static const std::string &emptyFile();

  const std::string *File = nullptr;
  unsigned Line = 0;
  unsigned Column = 0;
};

/// A half-open range of source, used for control-comment regions.
struct SourceRange {
  SourceLocation Begin;
  SourceLocation End;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_SOURCELOCATION_H
