//===--- Trace.cpp - Structured span timeline for check runs --------------===//
//
// Part of memlint. See DESIGN.md §6g.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

using namespace memlint;

namespace {

/// Integer microseconds for the trace-event "ts"/"dur" fields. Clamps
/// negatives (a clock hiccup must not produce invalid JSON).
long long toMicros(double Ms) {
  if (Ms <= 0)
    return 0;
  return static_cast<long long>(Ms * 1000.0);
}

} // namespace

std::string memlint::renderChromeTrace(const std::vector<TraceEvent> &Events) {
  std::string Out = "{\"traceEvents\": [";
  bool First = true;
  for (const TraceEvent &E : Events) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "{\"pid\": 1, \"tid\": " + std::to_string(E.Tid) + ", \"ph\": \"";
    Out += E.Ph;
    Out += "\", \"ts\": " + std::to_string(toMicros(E.TsMs));
    if (E.Ph == 'X')
      Out += ", \"dur\": " + std::to_string(toMicros(E.DurMs));
    Out += ", \"cat\": " + jsonString(E.Cat) +
           ", \"name\": " + jsonString(E.Name);
    if (!E.Args.empty()) {
      Out += ", \"args\": {";
      bool FirstArg = true;
      for (const auto &[Key, Value] : E.Args) {
        if (!FirstArg)
          Out += ", ";
        FirstArg = false;
        Out += jsonString(Key) + ": " + jsonString(Value);
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += First ? "]" : "\n]";
  Out += ", \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}
