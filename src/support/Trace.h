//===--- Trace.h - Structured span timeline for check runs ------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md §6g.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: a recorder of timestamped
/// spans and instant events that renders as Chrome trace-event JSON
/// (loadable in Perfetto or chrome://tracing). Where support/Metrics
/// answers "how much, in aggregate", a trace answers "where did the time
/// go within this run" — per file, per phase, per function.
///
/// Design constraints mirror MetricsRegistry exactly:
///
/// * Near-zero cost when disabled. Instrumentation sites hold a
///   TraceRecorder* that is null when tracing is off; ScopedTraceSpan never
///   reads the clock with a null recorder, so the disabled path is one
///   predictable branch (covered by bench_observability_overhead).
/// * Deterministic aggregation. Each batch worker records into a private
///   per-file recorder; the driver flushes the per-file event vectors in
///   input order, so the sequence of (category, name, args) tuples is
///   identical across -jN. Timestamps, durations, and worker ids (tid)
///   legitimately vary and are excluded from identity comparisons.
/// * Trivial well-formedness. Only two phase kinds are emitted: 'X'
///   (complete span, with duration) and 'i' (instant). There are no
///   begin/end pairs to balance, so a rendered trace can never be torn by
///   an abandoned span.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_TRACE_H
#define MEMLINT_SUPPORT_TRACE_H

#include "support/MonotonicTime.h"

#include <string>
#include <utility>
#include <vector>

namespace memlint {

/// One trace event. Spans ('X') carry a duration; instants ('i') do not.
/// Args is an ordered list (not a map) so rendering preserves the
/// insertion order chosen at the instrumentation site.
struct TraceEvent {
  char Ph = 'X';        ///< 'X' complete span, 'i' instant event.
  std::string Cat;      ///< Category: "batch", "frontend", "check", "service".
  std::string Name;     ///< Span/event name (stable, see DESIGN §6g).
  double TsMs = 0;      ///< Start timestamp, monotonic milliseconds.
  double DurMs = 0;     ///< Duration in milliseconds ('X' only).
  unsigned Tid = 0;     ///< Worker id (0 for single-run / service worker).
  std::vector<std::pair<std::string, std::string>> Args;
};

/// The collection point one traced run writes into. Same discipline as
/// MetricsRegistry: instrumentation sites hold a TraceRecorder* that is
/// null when tracing is off and guard every use with that null check.
/// Not thread-safe by design — one recorder belongs to one worker's file
/// attempt (the batch driver merges per-file buffers in input order).
class TraceRecorder {
public:
  /// Default worker id stamped on events recorded through this recorder.
  void setTid(unsigned T) { Tid = T; }
  unsigned tid() const { return Tid; }

  void record(TraceEvent E) {
    E.Tid = Tid;
    Events.push_back(std::move(E));
  }

  /// Records an instant event stamped with the current monotonic time.
  void instant(const char *Cat, const char *Name,
               std::vector<std::pair<std::string, std::string>> Args = {}) {
    TraceEvent E;
    E.Ph = 'i';
    E.Cat = Cat;
    E.Name = Name;
    E.TsMs = monotonicNowMs();
    E.Args = std::move(Args);
    record(std::move(E));
  }

  const std::vector<TraceEvent> &events() const { return Events; }

  /// Moves the buffered events out (the recorder is reusable afterwards).
  std::vector<TraceEvent> take() { return std::move(Events); }

  /// Discards buffered events (used when a file attempt is retried: the
  /// trace mirrors the metrics discipline and keeps the final attempt).
  void clear() { Events.clear(); }

private:
  unsigned Tid = 0;
  std::vector<TraceEvent> Events;
};

/// RAII complete-span recorder: captures the start time at construction and
/// records one 'X' event at destruction. With a null recorder it is fully
/// inert — the clock is never read — so instrumentation sites can be
/// written unconditionally.
class ScopedTraceSpan {
public:
  ScopedTraceSpan(TraceRecorder *Recorder, const char *Cat, const char *Name)
      : Recorder(Recorder), Cat(Cat), Name(Name),
        StartMs(Recorder ? monotonicNowMs() : 0) {}
  ~ScopedTraceSpan() {
    if (!Recorder)
      return;
    TraceEvent E;
    E.Ph = 'X';
    E.Cat = Cat;
    E.Name = Name;
    E.TsMs = StartMs;
    E.DurMs = monotonicNowMs() - StartMs;
    E.Args = std::move(Args);
    Recorder->record(std::move(E));
  }
  ScopedTraceSpan(const ScopedTraceSpan &) = delete;
  ScopedTraceSpan &operator=(const ScopedTraceSpan &) = delete;

  /// Attaches an argument to the span-to-be (no-op when tracing is off).
  void arg(const char *Key, std::string Value) {
    if (Recorder)
      Args.emplace_back(Key, std::move(Value));
  }

private:
  TraceRecorder *Recorder;
  const char *Cat;
  const char *Name;
  double StartMs;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Renders \p Events as a Chrome trace-event JSON document:
///   {"traceEvents": [ {...}, ... ], "displayTimeUnit": "ms"}
/// One event per line so text tools (and ci.sh) can normalize and compare
/// traces line-wise. Timestamps and durations are emitted as integer
/// microseconds per the trace-event spec; args values are emitted as JSON
/// strings. The result is directly loadable in Perfetto/chrome://tracing.
std::string renderChromeTrace(const std::vector<TraceEvent> &Events);

} // namespace memlint

#endif // MEMLINT_SUPPORT_TRACE_H
