//===--- VFS.cpp - Virtual file system -------------------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "support/VFS.h"

#include <fstream>
#include <sstream>

using namespace memlint;

bool VFS::addFromDisk(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  add(Path, Buffer.str());
  return true;
}
