//===--- VFS.h - Virtual file system for checked sources --------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory file system. The corpus programs (paper figures, the employee
/// database) are embedded as virtual files; the preprocessor resolves
/// #include against a VFS so whole multi-file programs can be checked without
/// touching the disk. Real files can be loaded into a VFS too.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_VFS_H
#define MEMLINT_SUPPORT_VFS_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace memlint {

/// A flat name -> contents mapping used by the preprocessor for #include
/// resolution and by the checker driver for main files.
class VFS {
public:
  /// Adds (or replaces) a file.
  void add(std::string Name, std::string Contents) {
    Files[std::move(Name)] = std::move(Contents);
  }

  /// \returns the contents of \p Name, or nullopt if absent.
  std::optional<std::string> read(const std::string &Name) const {
    auto It = Files.find(Name);
    if (It == Files.end())
      return std::nullopt;
    return It->second;
  }

  bool exists(const std::string &Name) const { return Files.count(Name) != 0; }

  /// All file names, sorted.
  std::vector<std::string> names() const {
    std::vector<std::string> Out;
    Out.reserve(Files.size());
    for (const auto &KV : Files)
      Out.push_back(KV.first);
    return Out;
  }

  /// Reads a file from the real file system into the VFS.
  /// \returns false if the file could not be read.
  bool addFromDisk(const std::string &Path);

private:
  std::map<std::string, std::string> Files;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_VFS_H
