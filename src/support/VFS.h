//===--- VFS.h - Virtual file system for checked sources --------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory file system. The corpus programs (paper figures, the employee
/// database) are embedded as virtual files; the preprocessor resolves
/// #include against a VFS so whole multi-file programs can be checked without
/// touching the disk. Real files can be loaded into a VFS too.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_SUPPORT_VFS_H
#define MEMLINT_SUPPORT_VFS_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace memlint {

/// A flat name -> contents mapping used by the preprocessor for #include
/// resolution and by the checker driver for main files.
///
/// Two optional hooks serve the check service (service/CheckService.h):
/// a Loader consulted on read() misses (so a long-lived daemon can resolve
/// request files and their #includes from disk on demand), and a read
/// observer (so the service's result cache can record exactly which files
/// a check consumed — its dependency set for content-hash invalidation).
/// A VFS with a Loader installed mutates on read and is therefore NOT
/// safe for concurrent readers; plain map-backed VFSes (no Loader) remain
/// freely shareable across batch-driver workers.
class VFS {
public:
  /// Adds (or replaces) a file.
  void add(std::string Name, std::string Contents) {
    Files[std::move(Name)] = std::move(Contents);
  }

  /// Drops \p Name from the in-memory map (a Loader may re-materialize it
  /// on the next read). \returns true if the file was present.
  bool drop(const std::string &Name) { return Files.erase(Name) != 0; }

  /// \returns the contents of \p Name, or nullopt if absent. On a miss
  /// with a Loader installed, the loader is consulted and a hit is cached
  /// in the map. Every successful read reports \p Name to the observer.
  std::optional<std::string> read(const std::string &Name) const {
    auto It = Files.find(Name);
    if (It == Files.end()) {
      if (!Loader)
        return std::nullopt;
      std::optional<std::string> Loaded = Loader(Name);
      if (!Loaded)
        return std::nullopt;
      It = Files.emplace(Name, std::move(*Loaded)).first;
    }
    if (OnRead)
      OnRead(Name);
    return It->second;
  }

  bool exists(const std::string &Name) const {
    if (Files.count(Name) != 0)
      return true;
    // Loader-backed existence materializes the file, so a later read
    // cannot disagree with this answer.
    if (!Loader)
      return false;
    std::optional<std::string> Loaded = Loader(Name);
    if (!Loaded)
      return false;
    Files.emplace(Name, std::move(*Loaded));
    return true;
  }

  /// Installs the read-miss fallback (empty function disables).
  void setLoader(
      std::function<std::optional<std::string>(const std::string &)> Fn) {
    Loader = std::move(Fn);
  }

  /// Installs the successful-read observer (empty function disables).
  void setReadObserver(std::function<void(const std::string &)> Fn) {
    OnRead = std::move(Fn);
  }

  /// All file names, sorted.
  std::vector<std::string> names() const {
    std::vector<std::string> Out;
    Out.reserve(Files.size());
    for (const auto &KV : Files)
      Out.push_back(KV.first);
    return Out;
  }

  /// Reads a file from the real file system into the VFS.
  /// \returns false if the file could not be read.
  bool addFromDisk(const std::string &Path);

private:
  /// Mutable so Loader hits materialize through the const read()/exists()
  /// paths the preprocessor uses.
  mutable std::map<std::string, std::string> Files;
  mutable std::function<std::optional<std::string>(const std::string &)>
      Loader;
  std::function<void(const std::string &)> OnRead;
};

} // namespace memlint

#endif // MEMLINT_SUPPORT_VFS_H
