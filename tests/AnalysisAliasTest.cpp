//===--- AnalysisAliasTest.cpp - Aliasing & exposure checking tests ------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

TEST(AliasTest, UniqueParamMayAliasOtherParam) {
  // Figure 8: strcpy's s1 is unique; two external parameters may alias.
  CheckResult R = check("struct e { char name[20]; int n; };\n"
                        "int f(struct e *e, char *s) {\n"
                        "  strcpy(e->name, s);\n"
                        "  return 1;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::UniqueAlias), 1u);
  EXPECT_TRUE(R.contains("declared unique but may be aliased externally"));
}

TEST(AliasTest, UniqueOnCallerParamProvesDistinct) {
  // The paper's fix: annotate the caller's parameter unique.
  CheckResult R = check("struct e { char name[20]; int n; };\n"
                        "int f(struct e *e, /*@unique@*/ char *s) {\n"
                        "  strcpy(e->name, s);\n"
                        "  return 1;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::UniqueAlias), 0u);
}

TEST(AliasTest, LocalBufferProvesDistinct) {
  CheckResult R = check("void f(char *s) {\n"
                        "  char buf[32];\n"
                        "  strcpy(buf, s);\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::UniqueAlias), 0u);
}

TEST(AliasTest, SameRootDifferentFieldsDistinct) {
  CheckResult R = check("struct p { char a[8]; char b[8]; };\n"
                        "void f(struct p *p) { strcpy(p->a, p->b); }");
  EXPECT_EQ(countOf(R, CheckId::UniqueAlias), 0u);
}

TEST(AliasTest, ExplicitAliasDetected) {
  CheckResult R = check("void f(char *s) {\n"
                        "  char *t = s;\n"
                        "  strcpy(t, s);\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::UniqueAlias), 1u);
}

TEST(AliasTest, ReturnedParamAliasesResult) {
  // strcpy returns its first argument; the result aliases it.
  CheckResult R = check(
      "extern /*@only@*/ char *dupe(/*@temp@*/ char *s);\n"
      "int f(char *dst, /*@unique@*/ char *src) {\n"
      "  char *r = strcpy(dst, src);\n"
      "  return r == dst;\n"
      "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AliasTest, GlobalAliasedByAssignment) {
  // After "g = p", freeing p kills the global too (detected at exit).
  CheckResult R = check("extern char *g;\n"
                        "void f(/*@only@*/ char *p) {\n"
                        "  g = p;\n"
                        "  free((void *) p);\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::GlobalState), 1u);
  EXPECT_TRUE(R.contains("referencing released storage"));
}

TEST(AliasTest, ObserverReturnNotModifiable) {
  CheckResult R = check(
      "struct s { int v; };\n"
      "extern /*@observer@*/ struct s *peek(void);\n"
      "void f(void) {\n"
      "  struct s *p = peek();\n"
      "  p->v = 3;\n"
      "}");
  EXPECT_GE(countOf(R, CheckId::Observer), 1u);
  EXPECT_TRUE(R.contains("Observer storage"));
}

TEST(AliasTest, ObserverReturnNotFreeable) {
  CheckResult R = check("extern /*@observer@*/ char *peek(void);\n"
                        "void f(void) {\n"
                        "  char *p = peek();\n"
                        "  free((void *) p);\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::AliasTransfer), 1u);
}

TEST(AliasTest, ObserverReadIsFine) {
  CheckResult R = check("struct s { int v; };\n"
                        "extern /*@observer@*/ struct s *peek(void);\n"
                        "int f(void) { return peek()->v; }");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AliasTest, ExposedMayBeModifiedNotFreed) {
  CheckResult R = check("struct s { int v; };\n"
                        "extern /*@exposed@*/ struct s *grab(void);\n"
                        "void f(void) {\n"
                        "  struct s *p = grab();\n"
                        "  p->v = 3;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();

  CheckResult R2 = check("extern /*@exposed@*/ char *grab(void);\n"
                         "void f(void) { free((void *) grab()); }");
  EXPECT_GE(R2.anomalyCount(), 1u);
}

TEST(AliasTest, TempParamAliasesPreserved) {
  // "At a call site where a reference is passed as a temp parameter, the
  // aliases to the storage it references are the same before and after the
  // call" — in particular the storage is still live and usable.
  CheckResult R = check("extern int look(/*@temp@*/ char *p);\n"
                        "int f(void) {\n"
                        "  char *p = (char *) malloc(8);\n"
                        "  int v;\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  p[0] = 'x';\n"
                        "  v = look(p);\n"
                        "  v = v + p[0];\n"
                        "  free((void *) p);\n"
                        "  return v;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AliasTest, ParamRebindingTracksMirror) {
  // After "l = l->next", writes through l reach the caller-visible
  // argl->next (the paper's Figure 5/6 walkthrough).
  CheckResult R = check(
      "typedef /*@null@*/ struct _n { int v; "
      "/*@null@*/ struct _n *next; } *node;\n"
      "void f(/*@temp@*/ node l) {\n"
      "  if (l != NULL) {\n"
      "    if (l->next != NULL) {\n"
      "      l = l->next;\n"
      "      l->next = (node) malloc(sizeof(*l));\n"
      "    }\n"
      "  }\n"
      "}");
  // The new tail's fields are never defined: caller-visible incomplete
  // definition through the rebound parameter.
  EXPECT_GE(countOf(R, CheckId::CompleteDefine), 1u);
  EXPECT_TRUE(R.contains("l->next->next")) << R.render();
}

} // namespace
