//===--- AnalysisAllocTest.cpp - Allocation/obligation checking tests ----------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

TEST(AllocTest, BalancedMallocFreeClean) {
  CheckResult R = check("int f(void) {\n"
                        "  char *p = (char *) malloc(8);\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  p[0] = 'x';\n"
                        "  free((void *) p);\n"
                        "  return 0;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AllocTest, LeakAtReturn) {
  CheckResult R = check("int f(void) {\n"
                        "  char *p = (char *) malloc(8);\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  p[0] = 'x';\n"
                        "  return 0;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("not released before return"));
}

TEST(AllocTest, LeakAtOverwrite) {
  // The Section 6 driver-leak pattern: "variables referencing allocated
  // storage are assigned to new values before the old storage is
  // released."
  CheckResult R = check("extern char *mk(void);\n"
                        "int f(void) {\n"
                        "  char *p;\n"
                        "  p = (char *) malloc(8);\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  p[0] = 'a';\n"
                        "  p = mk();\n"
                        "  return 0;\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("not released before assignment"));
}

TEST(AllocTest, GcModeDisablesLeakChecks) {
  CheckResult R = checkWithFlag("int f(void) {\n"
                                "  char *p = (char *) malloc(8);\n"
                                "  if (p == NULL) { return 1; }\n"
                                "  p[0] = 'x';\n"
                                "  return 0;\n"
                                "}",
                                "gcmode", true);
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(AllocTest, UseAfterFreeReported) {
  CheckResult R = check("int f(void) {\n"
                        "  int *p = (int *) malloc(sizeof(int));\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  *p = 3;\n"
                        "  free((void *) p);\n"
                        "  return *p;\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::UseReleased) +
                countOf(R, CheckId::UseUndefined),
            1u);
  EXPECT_TRUE(R.contains("Dead storage"));
}

TEST(AllocTest, DoubleFreeReported) {
  CheckResult R = check("int f(void) {\n"
                        "  int *p = (int *) malloc(sizeof(int));\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  *p = 3;\n"
                        "  free((void *) p);\n"
                        "  free((void *) p);\n"
                        "  return 0;\n"
                        "}");
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(AllocTest, FreeNullAllowed) {
  // "The ANSI Standard allows a null pointer to be passed to free."
  CheckResult R = check("void f(void) { free(NULL); }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(AllocTest, FreeIfNotNullMergesCleanly) {
  CheckResult R = check("void f(/*@only@*/ /*@null@*/ char *p) {\n"
                        "  if (p != NULL) { free((void *) p); }\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AllocTest, OnlyParamMustBeConsumed) {
  CheckResult R = check("void f(/*@only@*/ char *p) { }");
  EXPECT_EQ(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("Only storage p not released before return"));
}

TEST(AllocTest, OnlyParamFreedIsClean) {
  CheckResult R =
      check("void f(/*@only@*/ char *p) { free((void *) p); }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(AllocTest, OnlyParamReturnedAsOnly) {
  CheckResult R = check("/*@only@*/ char *f(/*@only@*/ char *p) "
                        "{ return p; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(AllocTest, TempParamPassedAsOnlyParam) {
  // The "Implicitly temp storage c passed as only param: free (c)" message
  // of Section 6.
  CheckResult R = check("void f(char *c) { free((void *) c); }");
  EXPECT_EQ(countOf(R, CheckId::AliasTransfer), 1u);
  EXPECT_TRUE(R.contains("Implicitly temp storage c passed as only param"));
}

TEST(AllocTest, ExplicitTempSpelledInMessage) {
  CheckResult R =
      check("void f(/*@temp@*/ char *c) { free((void *) c); }");
  EXPECT_TRUE(R.contains("Temp storage c passed as only param"));
  EXPECT_FALSE(R.contains("Implicitly temp"));
}

TEST(AllocTest, TempAssignedToOnlyGlobal) {
  // Figure 4's second message.
  CheckResult R = check("extern /*@only@*/ char *g;\n"
                        "void f(/*@temp@*/ char *p) { g = p; }");
  EXPECT_GE(countOf(R, CheckId::AliasTransfer), 1u);
  EXPECT_TRUE(R.contains("Temp storage p assigned to only"));
}

TEST(AllocTest, OnlyGlobalOverwriteLeak) {
  // Figure 4's first message.
  CheckResult R = check("extern /*@only@*/ char *g;\n"
                        "void f(/*@temp@*/ char *p) { g = p; }");
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("Only storage g not released before assignment"));
}

TEST(AllocTest, FreshTransferToOnlyGlobalClean) {
  CheckResult R = check("extern /*@only@*/ char *mkstr(void);\n"
                        "extern /*@null@*/ /*@only@*/ char *g;\n"
                        "void f(void) { g = mkstr(); }");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AllocTest, AllocatedOnlyGlobalIncompleteAtExit) {
  // Storing allocated-but-undefined storage in a global is incomplete
  // definition at the exit point.
  CheckResult R = check("extern /*@null@*/ /*@only@*/ char *g;\n"
                        "void f(void) { g = (char *) malloc(8); }");
  EXPECT_EQ(countOf(R, CheckId::GlobalState), 1u);
}

TEST(AllocTest, FreshToUnqualifiedExternalSuspicious) {
  // The eref_pool pattern: allocated storage stored in an unannotated
  // field of a static variable.
  CheckResult R = check("struct pool { char *mem; };\n"
                        "static struct pool p;\n"
                        "void init(void) { p.mem = (char *) malloc(64); }");
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("unqualified external reference"));
}

TEST(AllocTest, KeepParamStillUsableByCaller) {
  CheckResult R = check(
      "extern void stash(/*@keep@*/ char *p);\n"
      "int f(void) {\n"
      "  char *p = (char *) malloc(8);\n"
      "  if (p == NULL) { return 1; }\n"
      "  p[0] = 'x';\n"
      "  stash(p);\n"
      "  return p[0];\n" // still usable after a keep transfer
      "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AllocTest, OnlyParamArgUnusableAfterCall) {
  CheckResult R = check(
      "extern void consume(/*@only@*/ char *p);\n"
      "int f(void) {\n"
      "  char *p = (char *) malloc(8);\n"
      "  if (p == NULL) { return 1; }\n"
      "  p[0] = 'x';\n"
      "  consume(p);\n"
      "  return p[0];\n"
      "}");
  EXPECT_GE(countOf(R, CheckId::UseReleased) +
                countOf(R, CheckId::UseUndefined),
            1u);
}

TEST(AllocTest, SharedNeverReleased) {
  CheckResult R =
      check("void f(/*@shared@*/ char *p) { free((void *) p); }");
  EXPECT_GE(countOf(R, CheckId::AliasTransfer), 1u);
  EXPECT_TRUE(R.contains("shared storage p passed as only param"));
}

TEST(AllocTest, DependentMayNotRelease) {
  CheckResult R =
      check("void f(/*@dependent@*/ char *p) { free((void *) p); }");
  EXPECT_GE(countOf(R, CheckId::AliasTransfer), 1u);
}

TEST(AllocTest, OwnedMayBeReleased) {
  CheckResult R =
      check("void f(/*@owned@*/ char *p) { free((void *) p); }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(AllocTest, ConfluenceKeptVsOnly) {
  // The Figure 5 shape, reduced: e is consumed on one branch only.
  CheckResult R = check("extern /*@only@*/ char *g;\n"
                        "void f(int c, /*@only@*/ char *e) {\n"
                        "  if (c) {\n"
                        "    g = e;\n"
                        "  }\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::BranchState), 1u);
  EXPECT_TRUE(R.contains("kept on one branch, only on the other"));
}

TEST(AllocTest, BothBranchesConsumeClean) {
  CheckResult R = check("void f(int c, /*@only@*/ char *e) {\n"
                        "  if (c) {\n"
                        "    free((void *) e);\n"
                        "  } else {\n"
                        "    free((void *) e);\n"
                        "  }\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AllocTest, FreedOnOnePathOnly) {
  CheckResult R = check("void f(int c, /*@only@*/ char *e) {\n"
                        "  if (c) {\n"
                        "    free((void *) e);\n"
                        "  }\n"
                        "  e[0] = 'x';\n"
                        "}");
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(AllocTest, FreshReturnWithoutOnlyIsLeak) {
  CheckResult R = check("char *f(void) {\n"
                        "  char *p = (char *) malloc(8);\n"
                        "  if (p == NULL) { exit(1); }\n"
                        "  p[0] = 'x';\n"
                        "  return p;\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("returned without only annotation"));
}

TEST(AllocTest, OnlyReturnTransfersObligation) {
  CheckResult R = check("/*@only@*/ char *f(void) {\n"
                        "  char *p = (char *) malloc(8);\n"
                        "  if (p == NULL) { exit(1); }\n"
                        "  p[0] = 'x';\n"
                        "  return p;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(AllocTest, ImplicitOnlyRetFlagSilencesReturnLeak) {
  CheckResult R = checkWithFlag("char *f(void) {\n"
                                "  char *p = (char *) malloc(8);\n"
                                "  if (p == NULL) { exit(1); }\n"
                                "  p[0] = 'x';\n"
                                "  return p;\n"
                                "}",
                                "implicitonlyret", true);
  EXPECT_EQ(countOf(R, CheckId::MustFree), 0u);
}

TEST(AllocTest, TempReturnedAsOnly) {
  CheckResult R = check("/*@only@*/ char *f(/*@temp@*/ char *p) "
                        "{ return p; }");
  EXPECT_GE(countOf(R, CheckId::AliasTransfer), 1u);
  EXPECT_TRUE(R.contains("returned as only"));
}

TEST(AllocTest, ScopeExitLeak) {
  CheckResult R = check("void f(int c) {\n"
                        "  if (c) {\n"
                        "    char *p = (char *) malloc(8);\n"
                        "    if (p != NULL) { p[0] = 'x'; }\n"
                        "  }\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("scope exit"));
}

TEST(AllocTest, CompoundDestructionCheck) {
  // The paper's footnote: an out only void* parameter (free) must not
  // receive storage with live unshared objects inside.
  CheckResult R = check(
      "struct box { /*@only@*/ char *payload; int n; };\n"
      "void f(void) {\n"
      "  struct box *b = (struct box *) malloc(sizeof(struct box));\n"
      "  if (b == NULL) { return; }\n"
      "  b->payload = (char *) malloc(4);\n"
      "  if (b->payload == NULL) { free((void *) b); return; }\n"
      "  b->n = 1;\n"
      "  free((void *) b);\n"
      "}");
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("derivable from"));
}

TEST(AllocTest, OffsetFreeGatedByFlag) {
  const char *Source = "int f(void) {\n"
                       "  char *p = (char *) malloc(16);\n"
                       "  if (p == NULL) { return 1; }\n"
                       "  p[0] = 'x';\n"
                       "  p += 4;\n"
                       "  free((void *) p);\n"
                       "  return 0;\n"
                       "}";
  EXPECT_EQ(check(Source).anomalyCount(), 0u); // 1996 behavior: missed
  CheckResult Later = checkWithFlag(Source, "illegalfree", true);
  EXPECT_GE(Later.anomalyCount(), 1u); // the later improvement catches it
}

TEST(AllocTest, StaticFreeGatedByFlag) {
  const char *Source = "static int slot;\n"
                       "void f(void) {\n"
                       "  int *p = &slot;\n"
                       "  free((void *) p);\n"
                       "}";
  EXPECT_EQ(check(Source).anomalyCount(), 0u);
  EXPECT_GE(checkWithFlag(Source, "illegalfree", true).anomalyCount(), 1u);
}

TEST(AllocTest, StringLiteralNotFreeable) {
  CheckResult R = checkWithFlag("void f(void) {\n"
                                "  char *p = \"hello\";\n"
                                "  free((void *) p);\n"
                                "}",
                                "illegalfree", true);
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(AllocTest, LocalToLocalTransfer) {
  CheckResult R = check("int f(void) {\n"
                        "  char *p = (char *) malloc(8);\n"
                        "  char *q;\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  p[0] = 'x';\n"
                        "  q = p;\n"
                        "  free((void *) q);\n"
                        "  return 0;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

} // namespace
