//===--- AnalysisDefTest.cpp - Definition-state checking tests -----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

TEST(DefTest, UseBeforeDefinitionOfLocal) {
  CheckResult R = check("int f(void) { int x; return x; }");
  EXPECT_EQ(countOf(R, CheckId::UseUndefined), 1u);
  EXPECT_TRUE(R.contains("used before definition"));
}

TEST(DefTest, DefinedLocalClean) {
  CheckResult R = check("int f(void) { int x; x = 3; return x; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(DefTest, BranchDefinitionWeakestAssumption) {
  // The paper's acknowledged false positive: definition on one branch only
  // merges to undefined.
  CheckResult R = check("int f(int c) {\n"
                        "  int x;\n"
                        "  if (c) { x = 1; }\n"
                        "  return x;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::UseUndefined), 1u);
}

TEST(DefTest, BothBranchesDefineClean) {
  CheckResult R = check("int f(int c) {\n"
                        "  int x;\n"
                        "  if (c) { x = 1; } else { x = 2; }\n"
                        "  return x;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(DefTest, MallocResultFieldsUndefined) {
  // The result of malloc is allocated but not defined; reading a field
  // before assigning it is an anomaly.
  CheckResult R = check("struct s { int a; int b; };\n"
                        "int f(void) {\n"
                        "  struct s *p = (struct s *) malloc(sizeof(struct s));\n"
                        "  int v;\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  v = p->a;\n"
                        "  free((void *) p);\n"
                        "  return v;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::UseUndefined), 1u);
}

TEST(DefTest, AssignedFieldReadableOthersNot) {
  CheckResult R = check("struct s { int a; int b; };\n"
                        "int f(void) {\n"
                        "  struct s *p = (struct s *) malloc(sizeof(struct s));\n"
                        "  int v;\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  p->a = 5;\n"
                        "  v = p->a;\n"
                        "  free((void *) p);\n"
                        "  return v;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(DefTest, OutParamAssumedAllocatedNotDefined) {
  CheckResult R = check("struct s { int a; };\n"
                        "int f(/*@out@*/ struct s *p) {\n"
                        "  int v = p->a;\n" // reading out storage: anomaly
                        "  p->a = 1;\n"
                        "  return v;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::UseUndefined), 1u);
}

TEST(DefTest, OutParamMustBeDefinedBeforeReturn) {
  CheckResult R = check("struct s { int a; };\n"
                        "void f(/*@out@*/ struct s *p) { }");
  EXPECT_GE(countOf(R, CheckId::InterfaceDefine), 1u);
}

TEST(DefTest, OutParamFullyDefinedClean) {
  CheckResult R = check("struct s { int a; };\n"
                        "void f(/*@out@*/ struct s *p) { p->a = 0; }");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(DefTest, AllocatedStoragePassedAsDefinedParam) {
  // The anomaly that leads to adding the out annotation in Section 6.
  CheckResult R = check("extern void fill(char *s);\n"
                        "void f(void) {\n"
                        "  char buf[16];\n"
                        "  fill(buf);\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::CompleteDefine), 1u);
  EXPECT_TRUE(R.contains("Allocated storage buf"));
}

TEST(DefTest, OutParamAcceptsAllocatedStorage) {
  // "LCLint does not report an error when allocated storage is passed as
  // an out parameter."
  CheckResult R = check("extern void fill(/*@out@*/ char *s);\n"
                        "void f(void) {\n"
                        "  char buf[16];\n"
                        "  fill(buf);\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(DefTest, OutParamDefinedAfterCall) {
  CheckResult R = check("extern void fill(/*@out@*/ char *s);\n"
                        "int f(void) {\n"
                        "  char buf[16];\n"
                        "  fill(buf);\n"
                        "  return buf[0];\n" // defined after the call
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(DefTest, IncompleteDefinitionAtExit) {
  // Figure 5's second anomaly, reduced.
  CheckResult R = check(
      "typedef /*@null@*/ struct _n { int v; "
      "/*@null@*/ struct _n *next; } *node;\n"
      "void f(/*@temp@*/ node l) {\n"
      "  if (l != NULL) {\n"
      "    l->next = (node) malloc(sizeof(*l->next));\n"
      "    if (l->next != NULL) { l->next->v = 3; }\n"
      "  }\n"
      "}");
  EXPECT_GE(countOf(R, CheckId::CompleteDefine), 1u);
  EXPECT_TRUE(R.contains("incompletely-defined"));
}

TEST(DefTest, PartialFieldRelaxes) {
  CheckResult R = check("struct s { int a; /*@partial@*/ int b; };\n"
                        "extern void use(struct s *p);\n"
                        "void f(void) {\n"
                        "  struct s *p = (struct s *) malloc(sizeof(struct s));\n"
                        "  if (p == NULL) { return; }\n"
                        "  p->a = 1;\n"
                        "  use(p);\n"
                        "  free((void *) p);\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(DefTest, RelDefRelaxesDefinitionRequirement) {
  // An allocated (not yet defined) buffer may be passed as a reldef
  // parameter; without the annotation the same call is an anomaly.
  CheckResult Relaxed = check("extern void use(/*@reldef@*/ char *p);\n"
                              "void f(void) {\n"
                              "  char buf[4];\n"
                              "  use(buf);\n"
                              "}");
  EXPECT_EQ(Relaxed.anomalyCount(), 0u) << Relaxed.render();
}

TEST(DefTest, RelDefOutCategoryConflict) {
  // reldef and out are the same category: at most one may be used.
  CheckResult R = check("extern void use(/*@reldef@*/ /*@out@*/ int *p);");
  EXPECT_GE(countOf(R, CheckId::AnnotationError), 1u);
}

TEST(DefTest, UndefGlobalAssumedUndefinedAtEntry) {
  CheckResult R = check("extern /*@undef@*/ int g;\n"
                        "int f(void) { return g; }");
  EXPECT_EQ(countOf(R, CheckId::UseUndefined), 1u);
}

TEST(DefTest, SizeofDoesNotUseOperand) {
  // "Except sizeof, which does not need the value of its argument."
  CheckResult R = check("int f(void) { int x; return (int) sizeof(x); }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(DefTest, AddressOfUndefinedAllowed) {
  CheckResult R = check("extern void fill(/*@out@*/ int *p);\n"
                        "int f(void) {\n"
                        "  int x;\n"
                        "  fill(&x);\n"
                        "  return x;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

} // namespace
