//===--- AnalysisEdgeTest.cpp - Remaining analysis corner cases ----------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

TEST(EdgeTest, NullRepairPattern) {
  // if (p == NULL) p = fallback; — the repaired pointer is non-null after.
  CheckResult R = check("extern char *fallback(void);\n"
                        "int f(/*@null@*/ /*@returned@*/ char *p) {\n"
                        "  if (p == NULL) { p = fallback(); }\n"
                        "  return *p;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(EdgeTest, RelnullReturnAllowsNull) {
  CheckResult R = check("/*@relnull@*/ char *f(void) { return NULL; }");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(EdgeTest, ExplicitInAnnotation) {
  CheckResult R = check("extern void use(/*@in@*/ char *s);\n"
                        "void f(void) {\n"
                        "  char buf[4];\n"
                        "  use(buf);\n"
                        "}");
  // in = completely defined: an allocated-only buffer is an anomaly.
  EXPECT_EQ(countOf(R, CheckId::CompleteDefine), 1u);
}

TEST(EdgeTest, UniqueVsGlobal) {
  // A unique parameter may not be aliased by an accessible global either.
  CheckResult R = check(
      "extern char *gbuf;\n"
      "extern void fill(/*@unique@*/ /*@out@*/ char *dst, int n);\n"
      "void f(char *p) {\n"
      "  gbuf[0] = 'x';\n" // makes gbuf accessible in this function
      "  fill(p, 4);\n"
      "}");
  EXPECT_GE(countOf(R, CheckId::UniqueAlias), 1u);
  EXPECT_TRUE(R.contains("may be aliased by global gbuf")) << R.render();
}

TEST(EdgeTest, PostIncrementMakesOffset) {
  const char *Source = "int f(void) {\n"
                       "  char *p = (char *) malloc(4);\n"
                       "  if (p == NULL) { return 1; }\n"
                       "  p[0] = 'a';\n"
                       "  p++;\n"
                       "  free((void *) p);\n"
                       "  return 0;\n"
                       "}";
  // Default (1996): silent. With the later improvement: caught.
  EXPECT_EQ(check(Source).anomalyCount(), 0u);
  EXPECT_GE(checkWithFlag(Source, "illegalfree", true).anomalyCount(), 1u);
}

TEST(EdgeTest, PointerArithmeticResultIsOffset) {
  CheckResult R = checkWithFlag("void f(/*@temp@*/ char *base) {\n"
                                "  free((void *) (base + 4));\n"
                                "}",
                                "illegalfree", true);
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(EdgeTest, AddressOfLocalNotFreeable) {
  CheckResult R = checkWithFlag("void f(void) {\n"
                                "  int x;\n"
                                "  int *p = &x;\n"
                                "  free((void *) p);\n"
                                "}",
                                "illegalfree", true);
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(EdgeTest, CheckClassControlCommentScoped) {
  // A minus-flag region covers exactly its lines.
  CheckResult R = Checker::checkSource(
      "void a(/*@only@*/ char *p) { }\n"
      "/*@-mustfree@*/\n"
      "void b(/*@only@*/ char *q) { }\n"
      "/*@=mustfree@*/\n"
      "void c(/*@only@*/ char *r) { }\n",
      CheckOptions(), "t.c");
  EXPECT_EQ(R.anomalyCount(), 2u) << R.render();
  EXPECT_TRUE(R.contains("Only storage p"));
  EXPECT_TRUE(R.contains("Only storage r"));
  EXPECT_FALSE(R.contains("Only storage q"));
}

TEST(EdgeTest, TypedefOnlyFlowsToReturn) {
  CheckResult R = check("typedef /*@only@*/ char *ostring;\n"
                        "ostring mk(void) {\n"
                        "  char *p = (char *) malloc(4);\n"
                        "  if (p == NULL) { exit(1); }\n"
                        "  p[0] = '\\0';\n"
                        "  return p;\n"
                        "}");
  // The typedef's only annotation makes the return a transfer: no leak.
  EXPECT_EQ(countOf(R, CheckId::MustFree), 0u) << R.render();
}

TEST(EdgeTest, DerefAssignmentDefinesPointee) {
  CheckResult R = check("extern void sink(int v);\n"
                        "int f(void) {\n"
                        "  int *p = (int *) malloc(sizeof(int));\n"
                        "  int v;\n"
                        "  if (p == NULL) { return 1; }\n"
                        "  *p = 4;\n"
                        "  v = *p;\n"
                        "  free((void *) p);\n"
                        "  return v;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(EdgeTest, DoubleDeref) {
  CheckResult R = check("int f(/*@null@*/ int **pp) { return **pp; }");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(EdgeTest, CallResultDerefWhenNull) {
  CheckResult R = check("extern /*@null@*/ int *find(int k);\n"
                        "int f(void) { return *find(3); }");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(EdgeTest, MultipleReturnPointsEachChecked) {
  CheckResult R = check("extern char *g;\n"
                        "void f(int c, /*@null@*/ char *p) {\n"
                        "  if (c) {\n"
                        "    g = p;\n"
                        "    return;\n"
                        "  }\n"
                        "  g = p;\n"
                        "}");
  // Both exits see the possibly-null global; deduplication keeps distinct
  // locations apart.
  EXPECT_EQ(countOf(R, CheckId::NullReturn), 2u) << R.render();
}

TEST(EdgeTest, UnreachableCodeAfterExitNotChecked) {
  CheckResult R = check("void f(/*@null@*/ int *p) {\n"
                        "  exit(1);\n"
                        "  *p = 3;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(EdgeTest, VariadicCallExtraArgsChecked) {
  CheckResult R = check("void f(/*@null@*/ char *name) {\n"
                        "  printf(\"%s\\n\", *name);\n"
                        "}");
  // The deref inside the variadic argument is still checked.
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(EdgeTest, GcModeStillChecksNull) {
  // gcmode disables obligation checking, not null checking (paper §3:
  // "only those errors relevant in a garbage-collected environment").
  CheckResult R = checkWithFlag("int f(/*@null@*/ int *p) { return *p; }",
                                "gcmode", true);
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(EdgeTest, EmptyFunctionClean) {
  CheckResult R = check("void f(void) { }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(EdgeTest, RecursiveFunctionChecksOnce) {
  // Intraprocedural: recursion poses no problem.
  CheckResult R = check("int fact(int n) {\n"
                        "  if (n <= 1) { return 1; }\n"
                        "  return n * fact(n - 1);\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

} // namespace
