//===--- AnalysisInteractionTest.cpp - Cross-feature interaction tests ---------===//
//
// Part of memlint. See DESIGN.md.
//
// Scenarios where several annotation dimensions interact, plus control-flow
// corners (switch merges, do-while, for loops, nested conditionals).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

TEST(InteractionTest, ObserverParameterNotModifiable) {
  CheckResult R = check("void f(/*@observer@*/ char *s) { s[0] = 'x'; }");
  EXPECT_GE(countOf(R, CheckId::Observer), 1u);
}

TEST(InteractionTest, ObserverParameterReadable) {
  CheckResult R = check("int f(/*@observer@*/ char *s) { return s[0]; }");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, NullOnlyParamFreedUnderGuard) {
  // null + only interact: the null branch has no obligation, the non-null
  // branch must release.
  CheckResult Clean = check("void f(/*@null@*/ /*@only@*/ char *p) {\n"
                            "  if (p == NULL) { return; }\n"
                            "  free((void *) p);\n"
                            "}");
  EXPECT_EQ(Clean.anomalyCount(), 0u) << Clean.render();

  CheckResult Leaky = check("void f(/*@null@*/ /*@only@*/ char *p) {\n"
                            "  if (p == NULL) { return; }\n"
                            "}");
  EXPECT_GE(countOf(Leaky, CheckId::MustFree), 1u);
}

TEST(InteractionTest, OutOnlyReturnLikeMalloc) {
  // A user-defined allocator with the full malloc spec behaves like
  // malloc: possibly-null, contents undefined, caller owns it.
  CheckResult R = check(
      "extern /*@null@*/ /*@out@*/ /*@only@*/ void *grab(size_t n);\n"
      "struct s { int a; };\n"
      "int f(void) {\n"
      "  struct s *p = (struct s *) grab(sizeof(struct s));\n"
      "  int v;\n"
      "  if (p == NULL) { return 1; }\n"
      "  v = p->a;\n" // undefined: out result
      "  free((void *) p);\n"
      "  return v;\n"
      "}");
  EXPECT_EQ(countOf(R, CheckId::UseUndefined), 1u);
}

TEST(InteractionTest, SwitchBranchesConsumeConsistently) {
  CheckResult Clean = check("void f(int k, /*@only@*/ char *p) {\n"
                            "  switch (k) {\n"
                            "  case 0:\n"
                            "    free((void *) p);\n"
                            "    break;\n"
                            "  default:\n"
                            "    free((void *) p);\n"
                            "    break;\n"
                            "  }\n"
                            "}");
  EXPECT_EQ(Clean.anomalyCount(), 0u) << Clean.render();
}

TEST(InteractionTest, SwitchBranchConsumesInconsistently) {
  CheckResult R = check("void f(int k, /*@only@*/ char *p) {\n"
                        "  switch (k) {\n"
                        "  case 0:\n"
                        "    free((void *) p);\n"
                        "    break;\n"
                        "  default:\n"
                        "    break;\n"
                        "  }\n"
                        "}");
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(InteractionTest, SwitchWithoutDefaultKeepsEntryState) {
  // No default: the fall-past path still holds the obligation.
  CheckResult R = check("void f(int k, /*@only@*/ char *p) {\n"
                        "  switch (k) {\n"
                        "  case 0:\n"
                        "    free((void *) p);\n"
                        "    break;\n"
                        "  }\n"
                        "}");
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(InteractionTest, SwitchReturningEveryCase) {
  CheckResult R = check("int f(int k, /*@only@*/ char *p) {\n"
                        "  switch (k) {\n"
                        "  case 0:\n"
                        "    free((void *) p);\n"
                        "    return 0;\n"
                        "  default:\n"
                        "    free((void *) p);\n"
                        "    return 1;\n"
                        "  }\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, DoWhileBodyRunsOnce) {
  // The paper's model: do-while executes the body exactly once.
  CheckResult R = check("int f(void) {\n"
                        "  int x;\n"
                        "  do { x = 1; } while (x > 2);\n"
                        "  return x;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, ForLoopAllocFreePerIteration) {
  CheckResult R = check("void f(int n) {\n"
                        "  int i;\n"
                        "  for (i = 0; i < n; i = i + 1) {\n"
                        "    char *p = (char *) malloc(4);\n"
                        "    if (p != NULL) {\n"
                        "      p[0] = 'x';\n"
                        "      free((void *) p);\n"
                        "    }\n"
                        "  }\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, ForLoopLeakInBody) {
  CheckResult R = check("void f(int n) {\n"
                        "  int i;\n"
                        "  for (i = 0; i < n; i = i + 1) {\n"
                        "    char *p = (char *) malloc(4);\n"
                        "    if (p != NULL) { p[0] = 'x'; }\n"
                        "  }\n"
                        "}");
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
}

TEST(InteractionTest, BreakCarriesStateToLoopExit) {
  CheckResult R = check("void f(int n, /*@only@*/ char *p) {\n"
                        "  while (n > 0) {\n"
                        "    if (n == 3) {\n"
                        "      free((void *) p);\n"
                        "      break;\n"
                        "    }\n"
                        "    n = n - 1;\n"
                        "  }\n"
                        "}");
  // Freed on the break path only: inconsistent with the fall-through exit.
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(InteractionTest, NestedIfAllPathsConsume) {
  CheckResult R = check("void f(int a, int b, /*@only@*/ char *p) {\n"
                        "  if (a) {\n"
                        "    if (b) { free((void *) p); }\n"
                        "    else { free((void *) p); }\n"
                        "  } else {\n"
                        "    free((void *) p);\n"
                        "  }\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, ConditionalExprNullMix) {
  CheckResult R = check("extern /*@null@*/ char *maybe(void);\n"
                        "char *f(int c, char *fallback) {\n"
                        "  char *p = c ? maybe() : fallback;\n"
                        "  return p;\n"
                        "}");
  // One arm may be null: returning it as non-null is an anomaly.
  EXPECT_GE(countOf(R, CheckId::NullReturn), 1u);
}

TEST(InteractionTest, CommaExpressionStates) {
  CheckResult R = check("int f(void) {\n"
                        "  int a;\n"
                        "  int b;\n"
                        "  b = (a = 2, a + 1);\n"
                        "  return b;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, TruenullInsideLogicalAnd) {
  CheckResult R = check(
      "extern /*@truenull@*/ int isNull(/*@null@*/ char *x);\n"
      "int f(/*@null@*/ char *p) {\n"
      "  if (!isNull(p) && *p > 0) { return 1; }\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, KeepThenFreeIsDoubleRelease) {
  // keep transfers the obligation to the callee; freeing afterwards would
  // release the storage twice.
  CheckResult R = check("extern void stash(/*@keep@*/ char *p);\n"
                        "void f(void) {\n"
                        "  char *p = (char *) malloc(4);\n"
                        "  if (p == NULL) { return; }\n"
                        "  p[0] = 'x';\n"
                        "  stash(p);\n"
                        "  free((void *) p);\n"
                        "}");
  EXPECT_GE(R.anomalyCount(), 1u);
}

TEST(InteractionTest, SharedGlobalNeverObligated) {
  CheckResult R = check("extern /*@shared@*/ char *table;\n"
                        "void f(/*@shared@*/ char *p) { table = p; }");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(InteractionTest, StaticLocalPersists) {
  CheckResult R = check("char *f(void) {\n"
                        "  static char buf[8];\n"
                        "  buf[0] = 'x';\n"
                        "  return buf;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::MustFree), 0u) << R.render();
}

TEST(InteractionTest, RelnullFieldNoExitComplaint) {
  CheckResult R = check(
      "struct s { /*@relnull@*/ char *opt; int n; };\n"
      "extern struct s *box;\n"
      "void f(void) { box->opt = NULL; box->n = 0; }");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

} // namespace
