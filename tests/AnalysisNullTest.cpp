//===--- AnalysisNullTest.cpp - Null-pointer checking tests --------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

TEST(NullTest, DerefOfNullParamReported) {
  CheckResult R = check("int f(/*@null@*/ int *p) { return *p; }");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(NullTest, DerefOfNonNullParamClean) {
  CheckResult R = check("int f(int *p) { return *p; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, ArrowOfNullReported) {
  CheckResult R = check("struct s { int v; };\n"
                        "int f(/*@null@*/ struct s *p) { return p->v; }");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
  EXPECT_TRUE(R.contains("Arrow access from possibly null pointer p"));
}

TEST(NullTest, IndexOfNullReported) {
  CheckResult R = check("int f(/*@null@*/ int *p) { return p[2]; }");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(NullTest, OneBugOneMessage) {
  // After the first report the state is poisoned; no cascade.
  CheckResult R = check("int f(/*@null@*/ int *p) { return *p + *p; }");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(NullTest, RelnullDerefAllowed) {
  CheckResult R = check("int f(/*@relnull@*/ int *p) { return *p; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, RelnullAcceptsNullAssignment) {
  CheckResult R = check("struct s { /*@relnull@*/ char *opt; };\n"
                        "void f(struct s *p) { p->opt = NULL; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, PossiblyNullPassedAsNonNullParam) {
  CheckResult R = check("extern void use(int *q);\n"
                        "void f(/*@null@*/ int *p) { use(p); }");
  EXPECT_EQ(countOf(R, CheckId::NullPass), 1u);
}

TEST(NullTest, NullConstantPassedAsNonNullParam) {
  CheckResult R = check("extern void use(int *q);\n"
                        "void f(void) { use(NULL); }");
  EXPECT_EQ(countOf(R, CheckId::NullPass), 1u);
}

TEST(NullTest, NullAllowedForNullParam) {
  CheckResult R = check("extern void use(/*@null@*/ int *q);\n"
                        "void f(/*@null@*/ int *p) { use(p); use(NULL); }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, ReturningPossiblyNullAsNonNull) {
  CheckResult R = check("int *f(/*@null@*/ /*@returned@*/ int *p) "
                        "{ return p; }");
  EXPECT_EQ(countOf(R, CheckId::NullReturn), 1u);
}

TEST(NullTest, ReturningNullConstantAsNonNull) {
  CheckResult R = check("int *f(void) { return NULL; }");
  EXPECT_EQ(countOf(R, CheckId::NullReturn), 1u);
}

TEST(NullTest, NullReturnAnnotationAllowsIt) {
  CheckResult R = check("/*@null@*/ int *f(void) { return NULL; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, MallocResultIsPossiblyNull) {
  CheckResult R = check("int f(void) {\n"
                        "  int *p = (int *) malloc(sizeof(int));\n"
                        "  *p = 3;\n"
                        "  free((void *) p);\n"
                        "  return 0;\n"
                        "}");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(NullTest, GlobalNullStateCheckedAtExit) {
  // Figure 2: the exit-point check on globals.
  CheckResult R = check("extern char *g;\n"
                        "void f(/*@null@*/ char *p) { g = p; }");
  EXPECT_EQ(countOf(R, CheckId::NullReturn), 1u);
  EXPECT_TRUE(R.contains(
      "Function returns with non-null global g referencing null storage"));
}

TEST(NullTest, GlobalReassignedBeforeExitIsClean) {
  // "It would not be an anomaly to assign gname to NULL in the body ... as
  // long as it is re-assigned to a non-null value before the function
  // returns."
  CheckResult R = check("extern char *g;\n"
                        "extern char *fresh(void);\n"
                        "void f(/*@null@*/ char *p) { g = p; g = fresh(); }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, NullAnnotatedGlobalMayBeNullAtExit) {
  CheckResult R = check("extern /*@null@*/ char *g;\n"
                        "void f(/*@null@*/ char *p) { g = p; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, AssertRefinesState) {
  CheckResult R = check("int f(/*@null@*/ int *p) {\n"
                        "  assert(p != NULL);\n"
                        "  return *p;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, ExitTerminatesPath) {
  // Figure 7's erc_create shape: after the error branch calls exit, the
  // pointer is known non-null.
  CheckResult R = check("int f(void) {\n"
                        "  int *p = (int *) malloc(sizeof(int));\n"
                        "  if (p == NULL) { exit(EXIT_FAILURE); }\n"
                        "  *p = 1;\n"
                        "  free((void *) p);\n"
                        "  return 0;\n"
                        "}");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, TrueNullGuard) {
  CheckResult R = check(
      "extern /*@truenull@*/ int isNull(/*@null@*/ char *x);\n"
      "int f(/*@null@*/ char *p) { if (!isNull(p)) { return *p; } return 0; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, FalseNullGuard) {
  CheckResult R = check(
      "extern /*@falsenull@*/ int nonNull(/*@null@*/ char *x);\n"
      "int f(/*@null@*/ char *p) { if (nonNull(p)) { return *p; } return 0; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(NullTest, TrueNullWrongBranchStillReported) {
  CheckResult R = check(
      "extern /*@truenull@*/ int isNull(/*@null@*/ char *x);\n"
      "int f(/*@null@*/ char *p) { if (isNull(p)) { return *p; } return 0; }");
  EXPECT_EQ(countOf(R, CheckId::NullDeref), 1u);
}

TEST(NullTest, NullStorageDerivableFromReturn) {
  // Figure 7: "Null storage c->vals derivable from return value: c".
  CheckResult R = check("typedef struct { int *vals; int n; } *box;\n"
                        "box mk(void) {\n"
                        "  box c = (box) malloc(sizeof(*c));\n"
                        "  if (c == NULL) { exit(1); }\n"
                        "  c->vals = NULL;\n"
                        "  c->n = 0;\n"
                        "  return c;\n"
                        "}");
  EXPECT_TRUE(R.contains("Null storage c->vals derivable from return value"));
}

TEST(NullTest, NullFieldAnnotationSilencesDerivableReturn) {
  CheckResult R =
      check("typedef struct { /*@null@*/ int *vals; int n; } *box;\n"
            "box mk(void) {\n"
            "  box c = (box) malloc(sizeof(*c));\n"
            "  if (c == NULL) { exit(1); }\n"
            "  c->vals = NULL;\n"
            "  c->n = 0;\n"
            "  return c;\n"
            "}");
  EXPECT_EQ(countOf(R, CheckId::NullReturn), 0u);
}

TEST(NullTest, NotnullOverridesTypedefNull) {
  CheckResult R = check("typedef /*@null@*/ char *np;\n"
                        "int f(/*@notnull@*/ np p) { return *p; }");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

// Parameterized sweep over the guard forms the analysis must recognize.
class GuardFormTest : public ::testing::TestWithParam<const char *> {};

TEST_P(GuardFormTest, GuardedDerefIsClean) {
  std::string Source =
      std::string("extern /*@truenull@*/ int isNull(/*@null@*/ int *x);\n"
                  "int f(/*@null@*/ int *p) {\n") +
      GetParam() + "\n  return 0;\n}\n";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "test.c");
  EXPECT_EQ(R.anomalyCount(), 0u) << GetParam() << "\n" << R.render();
}

INSTANTIATE_TEST_SUITE_P(
    Forms, GuardFormTest,
    ::testing::Values(
        "  if (p != NULL) { return *p; }",
        "  if (NULL != p) { return *p; }",
        "  if (p) { return *p; }",
        "  if (p == NULL) { return 0; } return *p;",
        "  if (!p) { return 0; } return *p;",
        "  if (p == NULL) { exit(1); } return *p;",
        "  if (!isNull(p)) { return *p; }",
        "  if (p != NULL && *p > 0) { return *p; }",
        "  if (p == NULL || *p > 0) { return 0; } return *p;",
        "  while (p != NULL) { return *p; }",
        "  assert(p != NULL); return *p;",
        "  return (p != NULL) ? *p : 0;"));

} // namespace
