//===--- AnnotationsTest.cpp - Annotation & type-system tests ------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"
#include "checker/Frontend.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

TEST(AnnotationsTest, AddWordsByCategory) {
  Annotations A;
  EXPECT_TRUE(A.addWord("null"));
  EXPECT_TRUE(A.addWord("out"));
  EXPECT_TRUE(A.addWord("only"));
  EXPECT_TRUE(A.addWord("unique"));
  EXPECT_EQ(A.Null, NullAnn::Null);
  EXPECT_EQ(A.Def, DefAnn::Out);
  EXPECT_EQ(A.Alloc, AllocAnn::Only);
  EXPECT_TRUE(A.Unique);
}

TEST(AnnotationsTest, EmptyPredicate) {
  Annotations A;
  EXPECT_TRUE(A.empty());
  A.addWord("temp");
  EXPECT_FALSE(A.empty());
}

TEST(AnnotationsTest, SameWordTwiceIsFine) {
  Annotations A;
  EXPECT_TRUE(A.addWord("only"));
  EXPECT_TRUE(A.addWord("only"));
}

TEST(AnnotationsTest, TrueNullFalseNullConflict) {
  Annotations A;
  EXPECT_TRUE(A.addWord("truenull"));
  EXPECT_FALSE(A.addWord("falsenull"));
}

TEST(AnnotationsTest, OverrideWithDeclWins) {
  Annotations FromType;
  FromType.addWord("null");
  FromType.addWord("only");
  Annotations FromDecl;
  FromDecl.addWord("notnull");
  Annotations Combined = Annotations::overrideWith(FromType, FromDecl);
  EXPECT_EQ(Combined.Null, NullAnn::NotNull); // declaration overrides
  EXPECT_EQ(Combined.Alloc, AllocAnn::Only);  // type supplies the rest
}

TEST(AnnotationsTest, StrRendersAll) {
  Annotations A;
  A.addWord("null");
  A.addWord("only");
  A.addWord("unique");
  EXPECT_EQ(A.str(), "/*@null@*/ /*@only@*/ /*@unique@*/");
}

// The "at most one annotation in any category" rule, swept over every
// in-category pair.
struct CategoryCase {
  const char *First;
  const char *Second;
  bool SameValue;
};

class CategoryConflictTest : public ::testing::TestWithParam<CategoryCase> {
};

TEST_P(CategoryConflictTest, SecondWordRejectedUnlessEqual) {
  const CategoryCase &C = GetParam();
  Annotations A;
  ASSERT_TRUE(A.addWord(C.First));
  EXPECT_EQ(A.addWord(C.Second), C.SameValue) << C.First << "+" << C.Second;
}

INSTANTIATE_TEST_SUITE_P(
    NullCategory, CategoryConflictTest,
    ::testing::Values(CategoryCase{"null", "notnull", false},
                      CategoryCase{"null", "relnull", false},
                      CategoryCase{"notnull", "relnull", false},
                      CategoryCase{"relnull", "relnull", true}));

INSTANTIATE_TEST_SUITE_P(
    DefCategory, CategoryConflictTest,
    ::testing::Values(CategoryCase{"out", "in", false},
                      CategoryCase{"out", "partial", false},
                      CategoryCase{"in", "reldef", false},
                      CategoryCase{"partial", "reldef", false}));

INSTANTIATE_TEST_SUITE_P(
    AllocCategory, CategoryConflictTest,
    ::testing::Values(CategoryCase{"only", "keep", false},
                      CategoryCase{"only", "temp", false},
                      CategoryCase{"only", "owned", false},
                      CategoryCase{"only", "dependent", false},
                      CategoryCase{"only", "shared", false},
                      CategoryCase{"keep", "temp", false},
                      CategoryCase{"owned", "dependent", false},
                      CategoryCase{"temp", "temp", true}));

INSTANTIATE_TEST_SUITE_P(
    ExposureCategory, CategoryConflictTest,
    ::testing::Values(CategoryCase{"observer", "exposed", false},
                      CategoryCase{"observer", "observer", true}));

// Exhaustive sweep of every conflicting pair, in both orders: the earlier
// word must win, the later one must be rejected, and the rejection must
// name the occupant so the parser's warning can name both words and the
// winner deterministically.
TEST(AnnotationsTest, EveryConflictingPairNamesTheWinner) {
  const std::vector<std::vector<const char *>> Categories = {
      {"null", "notnull", "relnull"},
      {"out", "in", "partial", "reldef"},
      {"only", "keep", "temp", "owned", "dependent", "shared"},
      {"observer", "exposed"},
      {"truenull", "falsenull"},
      {"newref", "killref", "tempref"},
  };
  for (const auto &Words : Categories)
    for (const char *First : Words)
      for (const char *Second : Words) {
        if (std::string(First) == Second)
          continue;
        Annotations A;
        ASSERT_TRUE(A.addWord(First));
        std::string Existing;
        EXPECT_FALSE(A.addWord(Second, &Existing))
            << First << " then " << Second;
        EXPECT_EQ(Existing, First) << First << " then " << Second;
        // The earlier word stays in force after the rejection.
        Annotations Only;
        Only.addWord(First);
        EXPECT_EQ(A, Only) << First << " then " << Second;
      }
}

TEST(AnnotationsTest, ConflictsBetweenReportsPerCategoryPairs) {
  Annotations A, B;
  A.addWord("null");
  A.addWord("only");
  B.addWord("notnull");
  B.addWord("temp");
  auto Conflicts = Annotations::conflictsBetween(A, B);
  ASSERT_EQ(Conflicts.size(), 2u);
  EXPECT_EQ(Conflicts[0], (std::pair<std::string, std::string>("null",
                                                               "notnull")));
  EXPECT_EQ(Conflicts[1], (std::pair<std::string, std::string>("only",
                                                               "temp")));
}

TEST(AnnotationsTest, ConflictsBetweenIgnoresAgreementAndGaps) {
  Annotations A, B;
  A.addWord("null");
  B.addWord("null");
  B.addWord("only"); // A leaves Alloc unspecified: not a conflict
  EXPECT_TRUE(Annotations::conflictsBetween(A, B).empty());
}

TEST(AnnotationsTest, ConflictsBetweenCoversBooleanFamilies) {
  Annotations A, B;
  A.addWord("truenull");
  B.addWord("falsenull");
  A.addWord("newref");
  B.addWord("killref");
  auto Conflicts = Annotations::conflictsBetween(A, B);
  ASSERT_EQ(Conflicts.size(), 2u);
  EXPECT_EQ(Conflicts[0].first, "truenull");
  EXPECT_EQ(Conflicts[0].second, "falsenull");
  EXPECT_EQ(Conflicts[1].first, "newref");
  EXPECT_EQ(Conflicts[1].second, "killref");
}

//===--- type system ----------------------------------------------------------===//

TEST(TypeTest, BuiltinsCanonical) {
  ASTContext Ctx;
  EXPECT_EQ(Ctx.intTy(), Ctx.builtin(BuiltinType::Kind::Int));
  EXPECT_TRUE(Ctx.intTy().isInteger());
  EXPECT_TRUE(Ctx.intTy().isArithmetic());
  EXPECT_FALSE(Ctx.intTy().isPointer());
  EXPECT_TRUE(Ctx.voidTy().isVoid());
  EXPECT_FALSE(Ctx.doubleTy().isInteger());
  EXPECT_TRUE(Ctx.doubleTy().isArithmetic());
}

TEST(TypeTest, PointerUniquing) {
  ASTContext Ctx;
  QualType P1 = Ctx.pointerTo(Ctx.charTy());
  QualType P2 = Ctx.pointerTo(Ctx.charTy());
  EXPECT_EQ(P1.type(), P2.type());
  EXPECT_TRUE(P1.isPointer());
  EXPECT_EQ(P1.pointee(), Ctx.charTy());
}

TEST(TypeTest, TypedefCanonicalization) {
  ASTContext Ctx;
  auto *TD = Ctx.create<TypedefDecl>("size_t", SourceLocation(),
                                     Ctx.unsignedLongTy(), Annotations());
  QualType Sugar = Ctx.typedefTy(TD);
  EXPECT_TRUE(Sugar.isInteger());
  EXPECT_EQ(Sugar.canonical(), Ctx.unsignedLongTy());
  EXPECT_EQ(Sugar.str(), "size_t");
}

TEST(TypeTest, TypeAnnotationsChain) {
  ASTContext Ctx;
  Annotations Inner;
  Inner.addWord("null");
  auto *InnerTD = Ctx.create<TypedefDecl>(
      "np", SourceLocation(), Ctx.pointerTo(Ctx.charTy()), Inner);
  Annotations Outer;
  Outer.addWord("only");
  auto *OuterTD = Ctx.create<TypedefDecl>("onp", SourceLocation(),
                                          Ctx.typedefTy(InnerTD), Outer);
  Annotations All = typeAnnotations(Ctx.typedefTy(OuterTD));
  EXPECT_EQ(All.Null, NullAnn::Null);
  EXPECT_EQ(All.Alloc, AllocAnn::Only);
}

TEST(TypeTest, TypeToString) {
  ASTContext Ctx;
  EXPECT_EQ(Ctx.pointerTo(Ctx.charTy()).str(), "char *");
  EXPECT_EQ(Ctx.arrayOf(Ctx.intTy(), 8).str(), "int [8]");
  QualType FT = Ctx.functionTy(Ctx.intTy(), {Ctx.charTy()}, false);
  EXPECT_EQ(FT.str(), "int (char)");
}

TEST(TypeTest, ConstQualifier) {
  ASTContext Ctx;
  QualType CQ = Ctx.charTy().withConst();
  EXPECT_TRUE(CQ.isConst());
  EXPECT_EQ(CQ.str(), "const char");
}

} // namespace
