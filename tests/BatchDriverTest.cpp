//===--- BatchDriverTest.cpp - Resilient parallel batch driver -----------------===//
//
// Part of memlint. See DESIGN.md.
//
// The batch driver's contract: parallel output is byte-identical to
// sequential, pathological files are contained (deadline/crash -> one
// retry with halved limits -> a Degraded outcome) without poisoning their
// neighbors, and a killed run resumes from its journal without re-checking
// completed files.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

using namespace memlint;

namespace {

/// A unique temp path per test; removed on destruction.
class TempPath {
public:
  explicit TempPath(const std::string &Stem) {
    Path = ::testing::TempDir() + "/" + Stem;
    std::remove(Path.c_str());
  }
  ~TempPath() { std::remove(Path.c_str()); }
  const std::string &str() const { return Path; }

private:
  std::string Path;
};

/// A small mixed corpus: clean files, files with a known leak, a file with
/// a null-deref anomaly. Deterministic content keyed by index.
void buildCorpus(VFS &Files, std::vector<std::string> &Names, unsigned N) {
  for (unsigned I = 0; I < N; ++I) {
    std::string Name = "file" + std::to_string(I) + ".c";
    std::string Source;
    switch (I % 3) {
    case 0: // clean
      Source = "int id" + std::to_string(I) + "(int x) { return x + " +
               std::to_string(I) + "; }\n";
      break;
    case 1: // leak: fresh storage not released
      Source = "#include <stdlib.h>\n"
               "void leak" +
               std::to_string(I) +
               "(void) { char *p = (char *)malloc(10); }\n";
      break;
    default: // possibly-null dereference
      Source = "void deref" + std::to_string(I) +
               "(/*@null@*/ char *p) { *p = 'x'; }\n";
      break;
    }
    Files.add(Name, Source);
    Names.push_back(Name);
  }
}

//===--- determinism -----------------------------------------------------------===//

TEST(BatchDriverTest, ParallelOutputByteIdenticalToSequential) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 24);

  auto RunAt = [&](unsigned Jobs, std::string &Streamed) {
    BatchOptions Options;
    Options.Jobs = Jobs;
    Options.OnFileOutcome = [&Streamed](const FileOutcome &O) {
      Streamed += O.Diagnostics;
    };
    return BatchDriver(Options).run(Files, Names);
  };

  std::string StreamedJ1, StreamedJ8;
  BatchResult J1 = RunAt(1, StreamedJ1);
  BatchResult J8 = RunAt(8, StreamedJ8);

  // Byte-identical rendered output, both collected and streamed.
  EXPECT_EQ(J1.render(), J8.render());
  EXPECT_EQ(StreamedJ1, StreamedJ8);
  EXPECT_EQ(StreamedJ1, J1.render());

  // Identical per-file outcomes in input order.
  ASSERT_EQ(J1.Outcomes.size(), J8.Outcomes.size());
  for (size_t I = 0; I < J1.Outcomes.size(); ++I) {
    EXPECT_EQ(J1.Outcomes[I].File, Names[I]);
    EXPECT_EQ(J8.Outcomes[I].File, Names[I]);
    EXPECT_EQ(J1.Outcomes[I].Kind, J8.Outcomes[I].Kind) << Names[I];
    EXPECT_EQ(J1.Outcomes[I].Anomalies, J8.Outcomes[I].Anomalies)
        << Names[I];
    EXPECT_EQ(J1.Outcomes[I].Attempts, J8.Outcomes[I].Attempts) << Names[I];
    EXPECT_EQ(J1.Outcomes[I].Reasons, J8.Outcomes[I].Reasons) << Names[I];
  }
  EXPECT_EQ(J1.TotalAnomalies, J8.TotalAnomalies);
  EXPECT_GT(J1.TotalAnomalies, 0u); // the corpus does contain findings
}

TEST(BatchDriverTest, JournalOutcomesIdenticalAcrossJobCounts) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 12);

  auto JournalAt = [&](unsigned Jobs, const std::string &Path) {
    BatchOptions Options;
    Options.Jobs = Jobs;
    Options.JournalPath = Path;
    BatchDriver(Options).run(Files, Names);
    std::optional<std::string> Text = readFileText(Path);
    EXPECT_TRUE(Text.has_value());
    return parseJournal(Text ? *Text : "");
  };

  TempPath P1("batch_j1.jsonl"), P8("batch_j8.jsonl");
  JournalContents C1 = JournalAt(1, P1.str());
  JournalContents C8 = JournalAt(8, P8.str());

  EXPECT_TRUE(C1.HeaderValid);
  EXPECT_EQ(C1.Checksum, C8.Checksum);
  ASSERT_EQ(C1.Entries.size(), Names.size());
  ASSERT_EQ(C8.Entries.size(), Names.size());

  // Append order differs under parallelism; compare as per-file maps.
  auto ByFile = [](const JournalContents &C) {
    std::map<std::string, const JournalEntry *> Out;
    for (const JournalEntry &E : C.Entries)
      Out[E.File] = &E;
    return Out;
  };
  auto M1 = ByFile(C1), M8 = ByFile(C8);
  ASSERT_EQ(M1.size(), M8.size());
  for (const auto &[File, E1] : M1) {
    ASSERT_TRUE(M8.count(File)) << File;
    const JournalEntry *E8 = M8[File];
    EXPECT_EQ(E1->Status, E8->Status) << File;
    EXPECT_EQ(E1->Anomalies, E8->Anomalies) << File;
    EXPECT_EQ(E1->Attempts, E8->Attempts) << File;
    EXPECT_EQ(E1->Reasons, E8->Reasons) << File;
    EXPECT_EQ(E1->Diagnostics, E8->Diagnostics) << File;
  }
}

//===--- containment of pathological files -------------------------------------===//

TEST(BatchDriverTest, CrashingFileIsRetriedThenDegradedWithoutPoisoningBatch) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 9);

  // Baseline: the healthy corpus alone.
  BatchOptions Options;
  Options.Jobs = 4;
  BatchResult Healthy = BatchDriver(Options).run(Files, Names);

  // Insert a deliberately pathological file (deep nesting plus the crash
  // injection hook) in the middle of the corpus.
  std::string Bad = "#pragma memlint crash\nint f(int a) { return ";
  for (int I = 0; I < 2000; ++I)
    Bad += "(";
  Bad += "a";
  for (int I = 0; I < 2000; ++I)
    Bad += ")";
  Bad += "; }\n";
  Files.add("bad.c", Bad);
  std::vector<std::string> WithBad = Names;
  WithBad.insert(WithBad.begin() + 4, "bad.c");

  BatchResult Mixed = BatchDriver(Options).run(Files, WithBad);

  // The pathological file: contained crash, one retry, degraded outcome.
  const FileOutcome &BadOutcome = Mixed.Outcomes[4];
  EXPECT_EQ(BadOutcome.File, "bad.c");
  EXPECT_EQ(BadOutcome.Kind, FileOutcomeKind::Crash);
  EXPECT_EQ(BadOutcome.Attempts, 2u);
  EXPECT_TRUE(std::find(BadOutcome.Reasons.begin(), BadOutcome.Reasons.end(),
                        "internal-error") != BadOutcome.Reasons.end());

  // Every other file's diagnostics are unchanged by its presence.
  std::vector<FileOutcome> Others = Mixed.Outcomes;
  Others.erase(Others.begin() + 4);
  ASSERT_EQ(Others.size(), Healthy.Outcomes.size());
  for (size_t I = 0; I < Others.size(); ++I) {
    EXPECT_EQ(Others[I].File, Healthy.Outcomes[I].File);
    EXPECT_EQ(Others[I].Diagnostics, Healthy.Outcomes[I].Diagnostics);
    EXPECT_EQ(Others[I].Kind, Healthy.Outcomes[I].Kind);
  }

  // "Exit status reflects only real check findings": the crash adds no
  // anomalies to the batch total.
  EXPECT_EQ(Mixed.TotalAnomalies, Healthy.TotalAnomalies);
  EXPECT_EQ(Mixed.CrashCount, 1u);
  EXPECT_EQ(Mixed.RetriedCount, 1u);
}

TEST(BatchDriverTest, DeadlineMarksStalledFileTimeoutAndRestAreUnaffected) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 6);
  Files.add("slow.c", "int s(int x) { return x; }\n");
  Names.insert(Names.begin() + 2, "slow.c");

  BatchOptions Options;
  Options.Jobs = 2;
  Options.FileDeadlineMs = 10;
  // Simulate one file stalling far past the deadline (e.g. on hung I/O):
  // the watchdog must cancel it, the retry must time out again, and the
  // batch must keep going.
  Options.TestStallMs = [](const std::string &File) -> unsigned {
    return File == "slow.c" ? 60u : 0u;
  };
  BatchResult R = BatchDriver(Options).run(Files, Names);

  const FileOutcome &Slow = R.Outcomes[2];
  EXPECT_EQ(Slow.File, "slow.c");
  EXPECT_EQ(Slow.Kind, FileOutcomeKind::Timeout);
  EXPECT_EQ(Slow.Attempts, 2u);
  EXPECT_TRUE(std::find(Slow.Reasons.begin(), Slow.Reasons.end(),
                        "deadline") != Slow.Reasons.end());
  EXPECT_EQ(R.TimeoutCount, 1u);

  for (size_t I = 0; I < R.Outcomes.size(); ++I) {
    if (I == 2)
      continue;
    EXPECT_NE(R.Outcomes[I].Kind, FileOutcomeKind::Timeout)
        << R.Outcomes[I].File;
  }
}

//===--- resume ----------------------------------------------------------------===//

TEST(BatchDriverTest, ResumeSkipsCompletedFilesAndReplaysOutput) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 10);

  TempPath Journal("batch_resume.jsonl");
  BatchOptions Options;
  Options.Jobs = 2;
  Options.JournalPath = Journal.str();
  BatchResult Full = BatchDriver(Options).run(Files, Names);
  ASSERT_EQ(Full.Outcomes.size(), Names.size());

  // Simulate a kill mid-run: keep the header and the first 4 entries, plus
  // a torn partial line such as a dying process would leave.
  std::optional<std::string> Text = readFileText(Journal.str());
  ASSERT_TRUE(Text.has_value());
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Text->size()) {
    size_t End = Text->find('\n', Pos);
    if (End == std::string::npos)
      break;
    Lines.push_back(Text->substr(Pos, End - Pos));
    Pos = End + 1;
  }
  ASSERT_GE(Lines.size(), 5u);
  std::string Truncated;
  for (size_t I = 0; I < 5; ++I)
    Truncated += Lines[I] + "\n";
  Truncated += Lines[5].substr(0, Lines[5].size() / 2); // torn final line
  ASSERT_TRUE(writeFileText(Journal.str(), Truncated));

  Options.Resume = true;
  BatchResult Resumed = BatchDriver(Options).run(Files, Names);

  EXPECT_EQ(Resumed.ResumedCount, 4u);
  EXPECT_EQ(Resumed.JournalCorruptLines, 1u);
  EXPECT_EQ(Resumed.render(), Full.render());
  ASSERT_EQ(Resumed.Outcomes.size(), Full.Outcomes.size());
  for (size_t I = 0; I < Full.Outcomes.size(); ++I) {
    EXPECT_EQ(Resumed.Outcomes[I].Kind, Full.Outcomes[I].Kind);
    EXPECT_EQ(Resumed.Outcomes[I].Anomalies, Full.Outcomes[I].Anomalies);
  }

  // The resumed run compacted and completed the journal: parsing it now
  // yields one valid entry per file and no corruption.
  std::optional<std::string> After = readFileText(Journal.str());
  ASSERT_TRUE(After.has_value());
  JournalContents C = parseJournal(*After);
  EXPECT_TRUE(C.HeaderValid);
  EXPECT_EQ(C.CorruptLines, 0u);
  EXPECT_EQ(C.Entries.size(), Names.size());
}

TEST(BatchDriverTest, JournalForDifferentCorpusIsRejected) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 4);

  TempPath Journal("batch_mismatch.jsonl");
  BatchOptions Options;
  Options.JournalPath = Journal.str();
  BatchDriver(Options).run(Files, Names);
  std::optional<std::string> Before = readFileText(Journal.str());
  ASSERT_TRUE(Before.has_value());

  // Same journal, different corpus: --resume must refuse outright, not
  // silently re-check (which would clobber the journal being resumed).
  VFS OtherFiles;
  std::vector<std::string> OtherNames;
  buildCorpus(OtherFiles, OtherNames, 5);
  Options.Resume = true;
  BatchResult R = BatchDriver(Options).run(OtherFiles, OtherNames);

  EXPECT_TRUE(R.JournalRejected);
  EXPECT_EQ(R.ResumedCount, 0u);
  EXPECT_TRUE(R.Outcomes.empty());
  EXPECT_NE(R.JournalNote.find("--resume rejected"), std::string::npos)
      << R.JournalNote;
  EXPECT_NE(R.JournalNote.find(fnv1aHex(OtherNames)), std::string::npos)
      << "note should name both checksums: " << R.JournalNote;
  // The mismatched journal is left untouched for postmortem.
  std::optional<std::string> After = readFileText(Journal.str());
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(*After, *Before);
}

TEST(BatchDriverTest, JournalForDifferentFlagsIsRejected) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 3);

  TempPath Journal("batch_flags_mismatch.jsonl");
  BatchOptions Options;
  Options.JournalPath = Journal.str();
  BatchDriver(Options).run(Files, Names);

  // Same corpus, different checking policy: entries were produced under
  // other flags, so replaying them would report diagnostics this
  // invocation could never emit.
  BatchOptions Changed = Options;
  Changed.Check.Flags.limits().MaxTokens = 123;
  Changed.Resume = true;
  BatchResult R = BatchDriver(Changed).run(Files, Names);

  EXPECT_TRUE(R.JournalRejected);
  EXPECT_TRUE(R.Outcomes.empty());
  EXPECT_NE(R.JournalNote.find("checking policy"), std::string::npos)
      << R.JournalNote;

  // Unchanged policy still resumes cleanly.
  Options.Resume = true;
  BatchResult Same = BatchDriver(Options).run(Files, Names);
  EXPECT_FALSE(Same.JournalRejected);
  EXPECT_EQ(Same.ResumedCount, Names.size());
}

TEST(BatchDriverTest, JournalWithoutPolicyFingerprintIsRejected) {
  VFS Files;
  std::vector<std::string> Names;
  buildCorpus(Files, Names, 2);

  // A legacy journal: valid header for this exact corpus, but no "flags"
  // field. Its results cannot be verified against any invocation.
  TempPath Journal("batch_legacy.jsonl");
  ASSERT_TRUE(writeFileText(
      Journal.str(), journalHeaderLine(fnv1aHex(Names), Names.size()) + "\n"));

  BatchOptions Options;
  Options.JournalPath = Journal.str();
  Options.Resume = true;
  BatchResult R = BatchDriver(Options).run(Files, Names);
  EXPECT_TRUE(R.JournalRejected);
  EXPECT_TRUE(R.Outcomes.empty());
  EXPECT_NE(R.JournalNote.find("fingerprint"), std::string::npos)
      << R.JournalNote;
}

//===--- retry ladder ----------------------------------------------------------===//

TEST(BatchDriverTest, HalveLimitsTightensEveryBoundButKeepsFloors) {
  FlagSet Flags;
  Flags.limits().MaxTokens = 1000;
  Flags.limits().MaxNestingDepth = 1; // at the floor already
  Flags.limits().MaxStmtsPerFunction = 0; // unlimited stays unlimited
  Flags.limits().MaxEnvSplitsPerFunction = 7;
  halveLimits(Flags);
  EXPECT_EQ(Flags.limits().MaxTokens, 500u);
  EXPECT_EQ(Flags.limits().MaxNestingDepth, 1u);
  EXPECT_EQ(Flags.limits().MaxStmtsPerFunction, 0u);
  EXPECT_EQ(Flags.limits().MaxEnvSplitsPerFunction, 3u);
}

//===--- watchdog tick ---------------------------------------------------------===//

TEST(BatchDriverTest, WatchdogTickClampedToSaneRange) {
  // The watchdog sleeps DeadlineMs/8 between polls, but the tick must
  // never be zero (a 0 or tiny deadline would busy-spin) and never so
  // large that a timeout is noticed long after the deadline.
  const unsigned Deadlines[] = {0,   1,    2,    7,         8,
                                100, 4000, 60000, 4294967295u};
  for (unsigned D : Deadlines) {
    double Tick = watchdogTickMs(D);
    EXPECT_GE(Tick, 1.0) << "deadline " << D;
    EXPECT_LE(Tick, 50.0) << "deadline " << D;
  }
  EXPECT_DOUBLE_EQ(watchdogTickMs(0), 1.0);
  EXPECT_DOUBLE_EQ(watchdogTickMs(8), 1.0);
  EXPECT_DOUBLE_EQ(watchdogTickMs(100), 12.5);
  EXPECT_DOUBLE_EQ(watchdogTickMs(400), 50.0);
  EXPECT_DOUBLE_EQ(watchdogTickMs(4000), 50.0);
}

//===--- journal format --------------------------------------------------------===//

TEST(BatchDriverTest, JournalEntryRoundTripsThroughEscaping) {
  JournalEntry E;
  E.File = "dir/we\"ird \\name.c";
  E.Status = "degraded";
  E.Reasons = {"limitnesting", "limittokens"};
  E.Attempts = 2;
  E.Anomalies = 3;
  E.Suppressed = 1;
  E.WallMs = 12.5;
  E.Diagnostics = "a.c:1: line one\n\ttab and \"quotes\"\n";

  JournalContents C = parseJournal(journalHeaderLine("abc123", 1) + "\n" +
                                   journalEntryLine(E) + "\n");
  EXPECT_TRUE(C.HeaderValid);
  EXPECT_EQ(C.Checksum, "abc123");
  ASSERT_EQ(C.Entries.size(), 1u);
  const JournalEntry &Back = C.Entries[0];
  EXPECT_EQ(Back.File, E.File);
  EXPECT_EQ(Back.Status, E.Status);
  EXPECT_EQ(Back.Reasons, E.Reasons);
  EXPECT_EQ(Back.Attempts, E.Attempts);
  EXPECT_EQ(Back.Anomalies, E.Anomalies);
  EXPECT_EQ(Back.Suppressed, E.Suppressed);
  EXPECT_NEAR(Back.WallMs, E.WallMs, 0.01);
  EXPECT_EQ(Back.Diagnostics, E.Diagnostics);
}

} // namespace
