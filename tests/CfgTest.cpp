//===--- CfgTest.cpp - Control-flow graph tests --------------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"
#include "checker/Frontend.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

struct Built {
  Frontend FE;
  std::unique_ptr<CFG> G;
};

std::unique_ptr<Built> build(const std::string &Source,
                             const std::string &Fn) {
  auto B = std::make_unique<Built>();
  TranslationUnit *TU = B->FE.parseSource(Source, "test.c", false);
  B->G = CFG::build(TU->findFunction(Fn));
  return B;
}

TEST(CfgTest, StraightLine) {
  auto B = build("int f(int a) { a = a + 1; return a; }", "f");
  ASSERT_NE(B->G, nullptr);
  EXPECT_TRUE(B->G->isAcyclic());
  // Entry flows to exit through the single block chain.
  std::vector<unsigned> Order = B->G->topologicalOrder();
  EXPECT_EQ(Order.front(), B->G->entry());
}

TEST(CfgTest, IfProducesBranchAndMerge) {
  auto B = build("int f(int a) { if (a) { a = 1; } else { a = 2; } "
                 "return a; }",
                 "f");
  ASSERT_NE(B->G, nullptr);
  // Some block has two successors (the condition).
  bool HasBranch = false;
  for (const CFGBlock &Blk : B->G->blocks())
    if (Blk.Succs.size() == 2)
      HasBranch = true;
  EXPECT_TRUE(HasBranch);
  EXPECT_TRUE(B->G->isAcyclic());
}

TEST(CfgTest, WhileHasNoBackEdge) {
  // "The while loop is treated identically to an if statement — there is
  // no back edge to represent normal loop execution."
  auto B = build("int f(int a) { while (a > 0) { a = a - 1; } return a; }",
                 "f");
  ASSERT_NE(B->G, nullptr);
  EXPECT_TRUE(B->G->isAcyclic());
}

TEST(CfgTest, NestedLoopsAcyclic) {
  auto B = build("int f(int n) {\n"
                 "  int i; int j; int acc = 0;\n"
                 "  for (i = 0; i < n; i = i + 1) {\n"
                 "    for (j = 0; j < n; j = j + 1) {\n"
                 "      if (j == 2) { continue; }\n"
                 "      if (acc > 100) { break; }\n"
                 "      acc = acc + 1;\n"
                 "    }\n"
                 "  }\n"
                 "  while (acc > 0) { acc = acc - 2; }\n"
                 "  do { acc = acc + 1; } while (acc < 0);\n"
                 "  return acc;\n"
                 "}",
                 "f");
  ASSERT_NE(B->G, nullptr);
  EXPECT_TRUE(B->G->isAcyclic());
}

TEST(CfgTest, SwitchSections) {
  auto B = build("int f(int a) {\n"
                 "  switch (a) {\n"
                 "  case 0: return 1;\n"
                 "  case 1: a = 2; break;\n"
                 "  default: a = 3; break;\n"
                 "  }\n"
                 "  return a;\n"
                 "}",
                 "f");
  ASSERT_NE(B->G, nullptr);
  EXPECT_TRUE(B->G->isAcyclic());
  // The switch head has three successors (two cases + default).
  bool HasFanOut = false;
  for (const CFGBlock &Blk : B->G->blocks())
    if (Blk.Succs.size() >= 3)
      HasFanOut = true;
  EXPECT_TRUE(HasFanOut);
}

TEST(CfgTest, ReturnEndsPath) {
  auto B = build("int f(int a) { if (a) { return 1; } return 2; }", "f");
  ASSERT_NE(B->G, nullptr);
  // The exit block has no successors and both returns reach it.
  const CFGBlock &Exit = B->G->blocks()[B->G->exit()];
  EXPECT_TRUE(Exit.Succs.empty());
  unsigned PredCount = 0;
  for (const CFGBlock &Blk : B->G->blocks())
    for (unsigned Succ : Blk.Succs)
      if (Succ == B->G->exit())
        ++PredCount;
  EXPECT_EQ(PredCount, 2u);
}

TEST(CfgTest, NoBodyNoGraph) {
  Frontend FE;
  TranslationUnit *TU = FE.parseSource("extern int f(int);", "t.c", false);
  EXPECT_EQ(CFG::build(TU->findFunction("f")), nullptr);
}

TEST(CfgTest, Figure6ListAddh) {
  // The paper's Figure 6: the CFG of list_addh. Structure: entry, the
  // outer if, the while condition (no back edge), the loop body, the two
  // assignments, merges, exit.
  corpus::Program P = corpus::listAddh();
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  std::unique_ptr<CFG> G = CFG::build(TU->findFunction("list_addh"));
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->isAcyclic());

  std::string Printed = G->print();
  // NULL is macro-expanded by the prelude, so match the prefixes.
  EXPECT_NE(Printed.find("if (l != "), std::string::npos);
  EXPECT_NE(Printed.find("while (l->next != "), std::string::npos);
  EXPECT_NE(Printed.find("l = l->next"), std::string::npos);
  EXPECT_NE(Printed.find("l->next->this = e"), std::string::npos);
  EXPECT_NE(Printed.find("Function Exit"), std::string::npos);

  // Figure 6 has 11 execution points; our block granularity is close.
  EXPECT_GE(G->blocks().size(), 8u);
  EXPECT_LE(G->blocks().size(), 14u);
}

TEST(CfgTest, DotOutput) {
  auto B = build("int f(int a) { if (a) { a = 1; } return a; }", "f");
  std::string Dot = B->G->printDot();
  EXPECT_NE(Dot.find("digraph cfg {"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

// Property: every function of the synthetic corpus yields an acyclic CFG
// whose topological order starts at the entry.
class CfgPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CfgPropertyTest, GeneratedFunctionsAcyclic) {
  corpus::GenOptions O;
  O.Modules = 2;
  O.FunctionsPerModule = 10;
  O.Seed = GetParam();
  corpus::Program P = corpus::syntheticProgram(O);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  ASSERT_TRUE(FE.diags().empty()) << FE.diags().str();
  for (const FunctionDecl *FD : TU->definedFunctions()) {
    std::unique_ptr<CFG> G = CFG::build(FD);
    ASSERT_NE(G, nullptr);
    EXPECT_TRUE(G->isAcyclic()) << FD->name();
    std::vector<unsigned> Order = G->topologicalOrder();
    EXPECT_EQ(Order.size(), G->blocks().size());
    EXPECT_EQ(Order.front(), G->entry());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

} // namespace
