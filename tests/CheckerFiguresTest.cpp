//===--- CheckerFiguresTest.cpp - Golden tests for every paper figure ----------===//
//
// Part of memlint. See DESIGN.md.
//
// Each test pins a figure or Section 6 datum of the paper to the checker's
// behavior on the corpus reconstruction, including the exact message texts
// the paper prints.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::corpus;

namespace {

CheckResult checkProgram(const Program &P,
                         const CheckOptions &Options = CheckOptions()) {
  return Checker::checkFiles(P.Files, P.MainFiles, Options);
}

TEST(FiguresTest, Figure1NoAnnotationsNoMessages) {
  CheckResult R = checkProgram(sampleFigure(1));
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(FiguresTest, Figure2NullAnnotationExitAnomaly) {
  CheckResult R = checkProgram(sampleFigure(2));
  ASSERT_EQ(R.anomalyCount(), 1u) << R.render();
  const Diagnostic &D = R.Diagnostics[0];
  // The paper's exact output:
  //   sample.c:6: Function returns with non-null global gname referencing
  //               null storage
  //      sample.c:5: Storage gname may become null
  EXPECT_EQ(D.Loc.str(), "sample.c:6");
  EXPECT_EQ(D.Message,
            "Function returns with non-null global gname referencing null "
            "storage");
  ASSERT_EQ(D.Notes.size(), 1u);
  EXPECT_EQ(D.Notes[0].Loc.str(), "sample.c:5");
  EXPECT_EQ(D.Notes[0].Message, "Storage gname may become null");
}

TEST(FiguresTest, Figure3TrueNullGuardClean) {
  CheckResult R = checkProgram(sampleFigure(3));
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(FiguresTest, Figure4OnlyTempTwoAnomalies) {
  CheckResult R = checkProgram(sampleFigure(4));
  ASSERT_EQ(R.anomalyCount(), 2u) << R.render();
  // "sample.c:5: Only storage gname not released before assignment:
  //    gname = pname" / "sample.c:1: Storage gname becomes only"
  EXPECT_EQ(R.Diagnostics[0].Loc.str(), "sample.c:5");
  EXPECT_EQ(R.Diagnostics[0].Message,
            "Only storage gname not released before assignment: gname = "
            "pname");
  ASSERT_EQ(R.Diagnostics[0].Notes.size(), 1u);
  EXPECT_EQ(R.Diagnostics[0].Notes[0].Loc.str(), "sample.c:1");
  EXPECT_EQ(R.Diagnostics[0].Notes[0].Message,
            "Storage gname becomes only");
  // "sample.c:5: Temp storage pname assigned to only: gname = pname"
  //    / "sample.c:3: Storage pname becomes temp"
  EXPECT_EQ(R.Diagnostics[1].Message,
            "Temp storage pname assigned to only: gname = pname");
  ASSERT_EQ(R.Diagnostics[1].Notes.size(), 1u);
  EXPECT_EQ(R.Diagnostics[1].Notes[0].Loc.str(), "sample.c:3");
  EXPECT_EQ(R.Diagnostics[1].Notes[0].Message,
            "Storage pname becomes temp");
}

TEST(FiguresTest, Figure5ListAddhTwoAnomalies) {
  CheckResult R = checkProgram(listAddh());
  ASSERT_EQ(R.anomalyCount(), 2u) << R.render();
  // The confluence anomaly on e (the paper's point 10) ...
  EXPECT_EQ(R.count(CheckId::BranchState), 1u);
  EXPECT_TRUE(R.contains("Storage e is kept on one branch, only on the "
                         "other"));
  // ... and the incomplete-definition anomaly on argl->next->next at the
  // exit (point 11).
  EXPECT_EQ(R.count(CheckId::CompleteDefine), 1u);
  EXPECT_TRUE(R.contains("l->next->next is undefined"));
}

TEST(FiguresTest, Figure7ErcCreateNullDerivable) {
  Program P = employeeDb(DbVersion::Unannotated);
  CheckResult R = checkProgram(P);
  // "erc.c:26: Null storage c->vals derivable from return value: c"
  EXPECT_TRUE(R.contains("Null storage c->vals derivable from return "
                         "value: c"))
      << R.render();
}

TEST(FiguresTest, Figure7MacroAnomalyAtHeaderDefinition) {
  // After the null annotation is added, dereferences through the
  // erc_choose macro report at its definition in erc.h — unless guarded by
  // the added assertions. Build the guarded-free variant by checking the
  // NullAdded stage minus its FIX(null) assertion lines.
  Program P = employeeDb(DbVersion::NullAdded);
  VFS Stripped;
  for (const std::string &Name : P.Files.names()) {
    std::string Text = *P.Files.read(Name);
    // Blank the assertion lines the paper added.
    size_t Pos;
    while ((Pos = Text.find("assert(s->vals != NULL);")) !=
           std::string::npos)
      Text.replace(Pos, 24, "                        ");
    Stripped.add(Name, Text);
  }
  CheckResult R = Checker::checkFiles(Stripped, P.MainFiles);
  EXPECT_TRUE(R.contains("Arrow access from possibly null pointer s->vals"))
      << R.render();
  // The anomaly is located in the header, at the macro's definition.
  bool AtHeader = false;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Id == CheckId::NullDeref && D.Loc.file() == "erc.h")
      AtHeader = true;
  EXPECT_TRUE(AtHeader) << R.render();
}

TEST(FiguresTest, Figure8UniqueAliasInSetName) {
  Program P = employeeDb(DbVersion::NullAdded);
  CheckResult R = checkProgram(P);
  // "Parameter 1 (e->name) to function strcpy is declared unique but may
  //  be aliased externally by parameter 2 (na)"
  EXPECT_TRUE(R.contains("to function strcpy is declared unique but may be "
                         "aliased externally"))
      << R.render();
}

TEST(FiguresTest, Section6SixDriverLeaks) {
  // "Six memory leaks are detected in the test driver code."
  Program P = employeeDb(DbVersion::OnlyAdded);
  CheckResult R = checkProgram(P);
  EXPECT_EQ(R.anomalyCount(), 6u) << R.render();
  EXPECT_EQ(R.count(CheckId::MustFree), 6u);
  for (const Diagnostic &D : R.Diagnostics)
    EXPECT_EQ(D.Loc.file(), "drive.c");
}

TEST(FiguresTest, Section6FixedProgramClean) {
  Program P = employeeDb(DbVersion::Fixed);
  CheckResult R = checkProgram(P);
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
  // Some spurious messages are suppressed with control comments, as the
  // paper did 75 times on LCLint itself.
  EXPECT_GT(R.SuppressedCount, 0u);
}

TEST(FiguresTest, Section6ImplicitlyTempFreeMessage) {
  // "erc.c:49: Implicitly temp storage c passed as only param: free (c)"
  Program P = employeeDb(DbVersion::NullAdded);
  CheckResult R = checkProgram(P);
  EXPECT_TRUE(R.contains("Implicitly temp storage c passed as only param"))
      << R.render();
}

TEST(FiguresTest, Section6AnnotationLadderMonotone) {
  // Anomaly counts fall as annotations are added and bugs fixed.
  unsigned Bare =
      checkProgram(employeeDb(DbVersion::Unannotated)).anomalyCount();
  unsigned Null =
      checkProgram(employeeDb(DbVersion::NullAdded)).anomalyCount();
  unsigned Only =
      checkProgram(employeeDb(DbVersion::OnlyAdded)).anomalyCount();
  unsigned Fixed =
      checkProgram(employeeDb(DbVersion::Fixed)).anomalyCount();
  EXPECT_GT(Bare, Null);
  EXPECT_GT(Null, Only);
  EXPECT_GT(Only, Fixed);
  EXPECT_EQ(Fixed, 0u);
}

TEST(FiguresTest, Section6AnnotationCounts) {
  // "A total of 15 annotations were needed": 1 null + 1 out + 13 only
  // (plus the aliasing uniques of the Figure 8 subsection).
  Program Fixed = employeeDb(DbVersion::Fixed);
  unsigned Only = 0, Out = 0, Null = 0, Unique = 0;
  for (const std::string &Name : Fixed.Files.names()) {
    const std::string Text = *Fixed.Files.read(Name);
    for (size_t Pos = 0; (Pos = Text.find("/*@", Pos)) != std::string::npos;
         Pos += 3) {
      if (Text.compare(Pos, 10, "/*@only@*/") == 0)
        ++Only;
      if (Text.compare(Pos, 9, "/*@out@*/") == 0)
        ++Out;
      if (Text.compare(Pos, 10, "/*@null@*/") == 0)
        ++Null;
      if (Text.compare(Pos, 12, "/*@unique@*/") == 0)
        ++Unique;
    }
  }
  EXPECT_EQ(Only, 13u);  // exactly the paper's 13 only annotations
  EXPECT_EQ(Out, 1u);    // exactly the paper's 1 out annotation
  EXPECT_GE(Null, 1u);   // the vals field (plus the pre-existing typedef)
  EXPECT_GE(Unique, 2u); // the Figure 8 aliasing fixes
}

TEST(FiguresTest, Section6DatabaseSizeRealistic) {
  // "the toy employee database program (1000 lines of source code ...)"
  Program P = employeeDb(DbVersion::Fixed);
  EXPECT_GE(totalLines(P), 700u);
  EXPECT_LE(totalLines(P), 1300u);
}

TEST(FiguresTest, SuppressionsRemovableByFlag) {
  // The messages hidden by control comments are real: disabling the
  // corresponding checks globally yields the same clean result, while a
  // version without the comments would not be clean (checked via
  // suppression count).
  Program P = employeeDb(DbVersion::Fixed);
  CheckResult R = checkProgram(P);
  EXPECT_EQ(R.anomalyCount(), 0u);
  EXPECT_GE(R.SuppressedCount, 10u);
}

} // namespace
