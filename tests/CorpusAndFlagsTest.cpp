//===--- CorpusAndFlagsTest.cpp - Corpus generators & flag machinery -----------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "support/Flags.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace memlint;
using namespace memlint::corpus;

namespace {

//===--- flags ---------------------------------------------------------------===//

TEST(FlagsTest, DefaultsMatchPaper) {
  FlagSet F;
  EXPECT_FALSE(F.get("gcmode"));
  EXPECT_FALSE(F.get("implicitonlyret"));
  EXPECT_TRUE(F.get("impliedtempparams"));
  EXPECT_TRUE(F.get("strictindexalias"));
  EXPECT_FALSE(F.get("illegalfree")); // the 1996 tool missed these
  EXPECT_TRUE(F.get("mustfree"));     // all check classes on
  EXPECT_TRUE(F.get("nullderef"));
}

TEST(FlagsTest, ParsePlusMinus) {
  FlagSet F;
  EXPECT_TRUE(F.parse("+gcmode"));
  EXPECT_TRUE(F.get("gcmode"));
  EXPECT_TRUE(F.parse("-gcmode"));
  EXPECT_FALSE(F.get("gcmode"));
  EXPECT_FALSE(F.parse("gcmode"));
  EXPECT_FALSE(F.parse("+nosuchflag"));
  EXPECT_FALSE(F.parse(""));
}

TEST(FlagsTest, SaveRestore) {
  FlagSet F;
  F.save();
  F.set("mustfree", false);
  EXPECT_FALSE(F.get("mustfree"));
  F.restore();
  EXPECT_TRUE(F.get("mustfree"));
}

TEST(FlagsTest, KnownFlagsListed) {
  FlagSet F;
  std::vector<std::string> Names = F.knownFlags();
  EXPECT_GE(Names.size(), 20u);
  for (const std::string &Name : Names)
    EXPECT_TRUE(F.isKnown(Name));
}

TEST(FlagsTest, LimitFlagsInRegistry) {
  FlagSet F;
  std::vector<std::string> Names = F.knownFlags();
  for (const LimitSpec &Spec : limitSpecs()) {
    EXPECT_TRUE(F.isKnown(Spec.Name)) << Spec.Name;
    EXPECT_TRUE(F.isLimit(Spec.Name)) << Spec.Name;
    EXPECT_NE(std::find(Names.begin(), Names.end(), Spec.Name), Names.end())
        << Spec.Name;
  }
  // Check toggles are not limits.
  EXPECT_FALSE(F.isLimit("mustfree"));
}

TEST(FlagsTest, ParseLimitValues) {
  FlagSet F;
  EXPECT_TRUE(F.parse("-limittokens=1000"));
  EXPECT_EQ(F.getLimit("limittokens"), 1000u);
  EXPECT_EQ(F.limits().MaxTokens, 1000u);
  // '+' works identically for limits (the value carries the meaning).
  EXPECT_TRUE(F.parse("+limitnesting=64"));
  EXPECT_EQ(F.limits().MaxNestingDepth, 64u);
  // 0 = unlimited is accepted.
  EXPECT_TRUE(F.parse("-limitdiags=0"));
  EXPECT_EQ(F.limits().MaxDiagsTotal, 0u);
}

TEST(FlagsTest, MalformedLimitValuesRejected) {
  FlagSet F;
  EXPECT_FALSE(F.parse("-limittokens="));          // empty value
  EXPECT_FALSE(F.parse("-limittokens=abc"));       // non-numeric
  EXPECT_FALSE(F.parse("-limittokens=12x"));       // trailing junk
  EXPECT_FALSE(F.parse("-limittokens=99999999999999")); // overflow
  EXPECT_FALSE(F.parse("-nosuchlimit=5"));         // unknown name
  EXPECT_FALSE(F.parse("-mustfree=5"));            // toggles take no value
  // Nothing was modified by the rejected forms.
  EXPECT_EQ(F.limits().MaxTokens, ResourceBudget().MaxTokens);
}

TEST(FlagsTest, RejectionDiagnosticsNameTheProblem) {
  FlagSet F;
  std::string Error;

  EXPECT_FALSE(F.parse("-limittokens=12abc", Error));
  EXPECT_EQ(Error, "malformed value '12abc' for '-limittokens': expected a "
                   "non-negative integer (0 means unlimited)");

  EXPECT_FALSE(F.parse("-limittokens=-5", Error));
  EXPECT_EQ(Error, "malformed value '-5' for '-limittokens': expected a "
                   "non-negative integer (0 means unlimited)");

  EXPECT_FALSE(F.parse("-limittokens=", Error));
  EXPECT_EQ(Error, "missing value for '-limittokens': expected "
                   "'-limittokens=N' (0 means unlimited)");

  EXPECT_FALSE(F.parse("-limittokens=99999999999", Error));
  EXPECT_EQ(Error, "value '99999999999' for '-limittokens' is out of range "
                   "(maximum 4294967295)");

  EXPECT_FALSE(F.parse("-nosuchlimit=5", Error));
  EXPECT_EQ(Error, "unknown resource limit 'nosuchlimit' (try --flags)");

  EXPECT_FALSE(F.parse("-mustfree=5", Error));
  EXPECT_EQ(Error, "flag 'mustfree' is an on/off toggle and takes no value "
                   "(use '+mustfree' or '-mustfree')");

  EXPECT_FALSE(F.parse("-limittokens", Error));
  EXPECT_EQ(Error,
            "resource limit 'limittokens' needs a value: '-limittokens=N'");

  EXPECT_FALSE(F.parse("+nosuchflag", Error));
  EXPECT_EQ(Error, "unknown flag 'nosuchflag' (try --flags)");

  EXPECT_FALSE(F.parse("", Error));
  EXPECT_EQ(Error, "malformed flag '': expected '+name', '-name', or "
                   "'-limitname=value'");

  // Successful parses leave no stale error behind the caller's back.
  EXPECT_TRUE(F.parse("-limittokens=10", Error));
  EXPECT_EQ(F.getLimit("limittokens"), 10u);
}

TEST(FlagsTest, SaveRestoreCoversLimits) {
  FlagSet F;
  F.save();
  F.limits().MaxTokens = 77;
  F.set("mustfree", false);
  EXPECT_EQ(F.limits().MaxTokens, 77u);
  F.restore();
  EXPECT_EQ(F.limits().MaxTokens, ResourceBudget().MaxTokens);
  EXPECT_TRUE(F.get("mustfree"));
}

TEST(FlagsTest, CheckClassFlagDisablesGlobally) {
  CheckOptions Options;
  Options.Flags.set("mustfree", false);
  CheckResult R = Checker::checkSource(
      "void f(/*@only@*/ char *p) { }", Options, "t.c");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

//===--- control-comment suppression -------------------------------------------===//

TEST(SuppressionTest, MinusFlagRegion) {
  CheckResult R = Checker::checkSource("/*@-mustfree@*/\n"
                                       "void f(/*@only@*/ char *p) { }\n"
                                       "/*@=mustfree@*/\n"
                                       "void g(/*@only@*/ char *q) { }\n");
  // Only g's anomaly survives.
  EXPECT_EQ(R.anomalyCount(), 1u) << R.render();
  EXPECT_EQ(R.SuppressedCount, 1u);
  EXPECT_TRUE(R.contains("Only storage q"));
}

TEST(SuppressionTest, IgnoreEndRegion) {
  CheckResult R = Checker::checkSource("/*@ignore@*/\n"
                                       "void f(/*@only@*/ char *p) { }\n"
                                       "/*@end@*/\n"
                                       "void g(/*@only@*/ char *q) { }\n");
  EXPECT_EQ(R.anomalyCount(), 1u) << R.render();
}

TEST(SuppressionTest, SuppressedCountTracked) {
  CheckResult R = Checker::checkSource(
      "/*@ignore@*/\nvoid f(/*@only@*/ char *p) { }\n/*@end@*/\n");
  EXPECT_EQ(R.anomalyCount(), 0u);
  EXPECT_EQ(R.SuppressedCount, 1u);
}

//===--- corpus utilities -----------------------------------------------------===//

TEST(CorpusTest, StripAnnotationsRemovesAll) {
  std::string Stripped = stripAnnotations(
      "extern /*@null@*/ /*@only@*/ char *g; /*@-mustfree@*/ int x;");
  EXPECT_EQ(Stripped.find("/*@"), std::string::npos);
  EXPECT_NE(Stripped.find("extern char *g;"), std::string::npos);
}

TEST(CorpusTest, CountAnnotationsSkipsControls) {
  Program P;
  P.Files.add("a.c",
              "/*@null@*/ /*@only@*/ int *g; /*@-mustfree@*/ /*@end@*/");
  EXPECT_EQ(countAnnotations(P), 2u);
}

TEST(CorpusTest, SampleFigureVariants) {
  for (int V = 1; V <= 4; ++V) {
    Program P = sampleFigure(V);
    EXPECT_FALSE(P.MainFiles.empty());
    EXPECT_TRUE(P.Files.exists("sample.c"));
  }
  EXPECT_EQ(countAnnotations(sampleFigure(1)), 0u);
  EXPECT_EQ(countAnnotations(sampleFigure(4)), 2u);
}

TEST(CorpusTest, DbVersionsShareLineNumbers) {
  // Stage derivation preserves the line structure so diagnostics remain
  // comparable across stages.
  Program A = employeeDb(DbVersion::Fixed);
  Program B = employeeDb(DbVersion::OnlyAdded);
  EXPECT_EQ(totalLines(A), totalLines(B));
}

TEST(CorpusTest, GeneratorDeterministic) {
  GenOptions O;
  O.Seed = 7;
  Program A = syntheticProgram(O);
  Program B = syntheticProgram(O);
  for (const std::string &Name : A.Files.names())
    EXPECT_EQ(*A.Files.read(Name), *B.Files.read(Name));
}

TEST(CorpusTest, GeneratorScalesLinearly) {
  GenOptions Small;
  Small.Modules = 2;
  GenOptions Large;
  Large.Modules = 8;
  unsigned SmallLines = totalLines(syntheticProgram(Small));
  unsigned LargeLines = totalLines(syntheticProgram(Large));
  EXPECT_GT(LargeLines, 3 * SmallLines);
}

TEST(CorpusTest, SeededBugVariantsDiffer) {
  Program V0 = seededBug(BugKind::Leak, 0);
  Program V1 = seededBug(BugKind::Leak, 1);
  EXPECT_NE(*V0.Files.read("bug.c"), *V1.Files.read("bug.c"));
}

TEST(CorpusTest, DetectabilityTables) {
  // The paper's experience section: these classes were missed statically.
  EXPECT_FALSE(staticallyDetectable(BugKind::OffsetFree));
  EXPECT_FALSE(staticallyDetectable(BugKind::StaticFree));
  EXPECT_FALSE(staticallyDetectable(BugKind::GlobalLeakAtExit));
  EXPECT_TRUE(staticallyDetectable(BugKind::NullDeref));
  EXPECT_TRUE(staticallyDetectable(BugKind::Leak));
  for (BugKind K : allBugKinds())
    EXPECT_TRUE(dynamicallyDetectable(K));
}

// Property sweep: generated programs parse and check cleanly at several
// sizes and seeds (round-trip of the whole pipeline).
struct GenCase {
  unsigned Modules;
  unsigned Seed;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, ChecksCleanly) {
  GenOptions O;
  O.Modules = GetParam().Modules;
  O.FunctionsPerModule = 12;
  O.Seed = GetParam().Seed;
  Program P = syntheticProgram(O);
  CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorPropertyTest,
                         ::testing::Values(GenCase{1, 3}, GenCase{2, 17},
                                           GenCase{4, 99}, GenCase{6, 7},
                                           GenCase{3, 123456}));

// Property: every statically-detectable seeded bug is reported, and the
// 1996-missed classes stay silent under default flags.
class SeededBugStaticTest
    : public ::testing::TestWithParam<std::tuple<BugKind, unsigned>> {};

TEST_P(SeededBugStaticTest, MatchesDetectabilityTable) {
  auto [Kind, Variant] = GetParam();
  Program P = seededBug(Kind, Variant);
  CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
  if (staticallyDetectable(Kind))
    EXPECT_GE(R.anomalyCount(), 1u) << bugKindName(Kind) << "\n"
                                    << R.render();
  else
    EXPECT_EQ(R.anomalyCount(), 0u) << bugKindName(Kind) << "\n"
                                    << R.render();
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsBothVariants, SeededBugStaticTest,
    ::testing::Combine(::testing::ValuesIn(allBugKinds()),
                       ::testing::Values(0u, 1u)));

} // namespace
