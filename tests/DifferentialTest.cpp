//===--- DifferentialTest.cpp - Static vs. runtime detection matrix -------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
//
// The differential contract behind the fuzzing harness, asserted exhaustively:
// for every seeded defect class and every program variant, the run-time
// baseline catches the bug when the buggy path executes, and the static
// checker catches exactly the classes the paper reports as statically
// detectable — staying silent on the 1996-missed classes.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

using namespace memlint;
using namespace memlint::corpus;

namespace {

/// The run-time error class each seeded bug kind must produce.
RuntimeError::Kind expectedRuntimeKind(BugKind Kind) {
  switch (Kind) {
  case BugKind::NullDeref:
    return RuntimeError::Kind::NullDeref;
  case BugKind::Leak:
    return RuntimeError::Kind::LeakAtExit;
  case BugKind::UseAfterFree:
    return RuntimeError::Kind::UseAfterFree;
  case BugKind::DoubleFree:
    return RuntimeError::Kind::DoubleFree;
  case BugKind::UndefRead:
    return RuntimeError::Kind::UndefRead;
  case BugKind::OffsetFree:
    return RuntimeError::Kind::OffsetFree;
  case BugKind::StaticFree:
    return RuntimeError::Kind::BadFree;
  case BugKind::GlobalLeakAtExit:
    return RuntimeError::Kind::LeakAtExit;
  }
  return RuntimeError::Kind::Trap;
}

class DifferentialMatrixTest
    : public ::testing::TestWithParam<std::tuple<BugKind, unsigned>> {};

// Static side of the matrix: the checker flags every statically-detectable
// class on every variant, and reports nothing for the classes the 1996 tool
// missed (so they cannot be "detected" by accident on one shape).
TEST_P(DifferentialMatrixTest, StaticDetectionMatchesTable) {
  auto [Kind, Variant] = GetParam();
  Program P = seededBug(Kind, Variant);
  CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
  if (staticallyDetectable(Kind))
    EXPECT_GE(R.anomalyCount(), 1u)
        << P.Name << "\n"
        << *P.Files.read("bug.c") << "\n"
        << R.render();
  else
    EXPECT_EQ(R.anomalyCount(), 0u)
        << P.Name << "\n"
        << *P.Files.read("bug.c") << "\n"
        << R.render();
}

// Dynamic side of the matrix: every variant of every class parses cleanly,
// executes, and produces the class's run-time error — the oracle the fuzz
// harness scores the checker against.
TEST_P(DifferentialMatrixTest, RuntimeOracleDetects) {
  auto [Kind, Variant] = GetParam();
  Program P = seededBug(Kind, Variant);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  ASSERT_TRUE(FE.diags().empty()) << P.Name << "\n" << FE.diags().str();
  Interpreter I(*TU, frontendDegraded(FE.diags()));
  RunResult R = I.run();
  EXPECT_FALSE(R.NotExecutable) << P.Name;
  EXPECT_FALSE(R.hasError(RuntimeError::Kind::Trap)) << P.Name;
  EXPECT_TRUE(R.hasError(expectedRuntimeKind(Kind)))
      << P.Name << "\n"
      << *P.Files.read("bug.c") << "\nexpected "
      << runtimeErrorKindName(expectedRuntimeKind(Kind));
  EXPECT_TRUE(dynamicallyDetectable(Kind));
}

std::vector<unsigned> allVariants() {
  std::vector<unsigned> V;
  for (unsigned I = 0; I < seededBugVariants(); ++I)
    V.push_back(I);
  return V;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllVariants, DifferentialMatrixTest,
    ::testing::Combine(::testing::ValuesIn(allBugKinds()),
                       ::testing::ValuesIn(allVariants())),
    [](const ::testing::TestParamInfo<std::tuple<BugKind, unsigned>> &Info) {
      std::string Name = bugKindName(std::get<0>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_v" + std::to_string(std::get<1>(Info.param));
    });

// The variant fleet is genuinely diverse: within a kind, every variant's
// source differs from every other (mutation fodder, and a guard against a
// variant silently collapsing into another).
TEST(DifferentialMatrixTest, VariantsArePairwiseDistinct) {
  for (BugKind Kind : allBugKinds())
    for (unsigned A = 0; A < seededBugVariants(); ++A)
      for (unsigned B = A + 1; B < seededBugVariants(); ++B) {
        Program PA = seededBug(Kind, A);
        Program PB = seededBug(Kind, B);
        EXPECT_NE(*PA.Files.read("bug.c"), *PB.Files.read("bug.c"))
            << bugKindName(Kind) << " v" << A << " == v" << B;
      }
}

} // namespace
