//===--- EnvTest.cpp - Environment and RefPath unit tests ----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/Env.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

class EnvTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  VarDecl *L = nullptr;
  ParmVarDecl *P = nullptr;
  FieldDecl *Next = nullptr;
  FieldDecl *ThisF = nullptr;

  void SetUp() override {
    L = Ctx.create<VarDecl>("l", SourceLocation("f.c", 1, 1),
                            Ctx.pointerTo(Ctx.charTy()), Annotations(),
                            StorageClass::None, /*Global=*/false);
    P = Ctx.create<ParmVarDecl>("p", SourceLocation("f.c", 2, 1),
                                Ctx.pointerTo(Ctx.charTy()), Annotations(),
                                0);
    Next = Ctx.create<FieldDecl>("next", SourceLocation("f.c", 3, 1),
                                 Ctx.pointerTo(Ctx.charTy()), Annotations(),
                                 0);
    ThisF = Ctx.create<FieldDecl>("this", SourceLocation("f.c", 4, 1),
                                  Ctx.pointerTo(Ctx.charTy()), Annotations(),
                                  1);
  }

  static PathElem deref() {
    PathElem E;
    E.K = PathElem::Kind::Deref;
    return E;
  }
  static PathElem dot(FieldDecl *F) {
    PathElem E;
    E.K = PathElem::Kind::Dot;
    E.Field = F;
    E.FieldName = F->name();
    return E;
  }
  RefPath arrow(RefPath Base, FieldDecl *F) {
    return Base.child(deref()).child(dot(F));
  }

  static SVal mk(DefState D, NullState N, AllocState A) {
    SVal V;
    V.Def = D;
    V.Null = N;
    V.Alloc = A;
    return V;
  }

  Env::DefaultFn defaultAll(SVal V) {
    return [V](const RefPath &) { return V; };
  }
};

TEST_F(EnvTest, RefPathPrinting) {
  RefPath Root = RefPath::var(L);
  EXPECT_EQ(Root.str(), "l");
  EXPECT_EQ(arrow(Root, Next).str(), "l->next");
  EXPECT_EQ(arrow(arrow(Root, Next), ThisF).str(), "l->next->this");
  EXPECT_EQ(Root.child(deref()).str(), "*l");
  EXPECT_EQ(Root.child(deref()).child(deref()).str(), "**l");
}

TEST_F(EnvTest, PrefixOperations) {
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  RefPath GrandChild = arrow(Child, ThisF);
  EXPECT_TRUE(Child.hasPrefix(Root));
  EXPECT_TRUE(GrandChild.hasPrefix(Child));
  EXPECT_TRUE(GrandChild.hasPrefix(GrandChild));
  EXPECT_FALSE(Root.hasPrefix(Child));

  RefPath Mirror = RefPath::arg(P);
  RefPath Rewritten = GrandChild.withPrefixReplaced(Root, Mirror);
  EXPECT_EQ(Rewritten.str(), "p->next->this");
  EXPECT_EQ(Rewritten.rootKind(), RefPath::RootKind::Arg);
}

TEST_F(EnvTest, ArgAndVarRootsDistinct) {
  RefPath VarRoot = RefPath::var(P);
  RefPath ArgRoot = RefPath::arg(P);
  EXPECT_NE(VarRoot, ArgRoot);
  EXPECT_FALSE(VarRoot.hasPrefix(ArgRoot));
}

TEST_F(EnvTest, SetAndFind) {
  Env S;
  RefPath Root = RefPath::var(L);
  EXPECT_EQ(S.find(Root), nullptr);
  S.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Temp));
  ASSERT_NE(S.find(Root), nullptr);
  EXPECT_EQ(S.find(Root)->Alloc, AllocState::Temp);
}

TEST_F(EnvTest, EraseDescendantsKeepsSelf) {
  Env S;
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  S.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Temp));
  S.set(Child, mk(DefState::Undefined, NullState::Unknown,
                  AllocState::Unqualified));
  S.eraseDescendants(Root);
  EXPECT_NE(S.find(Root), nullptr);
  EXPECT_EQ(S.find(Child), nullptr);
}

TEST_F(EnvTest, AliasSymmetryAndClear) {
  Env S;
  RefPath A = RefPath::var(L);
  RefPath B = RefPath::arg(P);
  S.addAlias(A, B);
  EXPECT_EQ(S.aliasesOf(A).count(B), 1u);
  EXPECT_EQ(S.aliasesOf(B).count(A), 1u);
  S.clearAliases(A);
  EXPECT_TRUE(S.aliasesOf(A).empty());
  EXPECT_TRUE(S.aliasesOf(B).empty());
}

TEST_F(EnvTest, ExpansionsThroughAliasedPrefix) {
  // l aliases argp: l->next expands to {l->next, argp->next}.
  Env S;
  RefPath LRoot = RefPath::var(L);
  RefPath Mirror = RefPath::arg(P);
  S.addAlias(LRoot, Mirror);
  std::vector<RefPath> Exp = S.expansions(arrow(LRoot, Next));
  ASSERT_EQ(Exp.size(), 2u);
  bool SawMirror = false;
  for (const RefPath &R : Exp)
    if (R.rootKind() == RefPath::RootKind::Arg)
      SawMirror = true;
  EXPECT_TRUE(SawMirror);
}

TEST_F(EnvTest, ExpansionsThroughDerivedAlias) {
  // The Figure 5 situation: l aliases argp->next; writing l->next also
  // covers argp->next->next.
  Env S;
  RefPath LRoot = RefPath::var(L);
  RefPath MirrorNext = arrow(RefPath::arg(P), Next);
  S.addAlias(LRoot, MirrorNext);
  std::vector<RefPath> Exp = S.expansions(arrow(LRoot, Next));
  bool SawDeep = false;
  for (const RefPath &R : Exp)
    if (R.str() == "p->next->next")
      SawDeep = true;
  EXPECT_TRUE(SawDeep);
}

TEST_F(EnvTest, MergeTakesWeakestDef) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath Root = RefPath::var(L);
  A.set(Root, mk(DefState::Defined, NullState::NotNull,
                 AllocState::Unqualified));
  B.set(Root, mk(DefState::Undefined, NullState::NotNull,
                 AllocState::Unqualified));
  std::vector<Env::Conflict> Conflicts = A.mergeFrom(B, defaultAll(Default));
  EXPECT_TRUE(Conflicts.empty());
  EXPECT_EQ(A.find(Root)->Def, DefState::Undefined);
}

TEST_F(EnvTest, MergeObligationConflictReported) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath Root = RefPath::var(L);
  A.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Kept));
  B.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  std::vector<Env::Conflict> Conflicts = A.mergeFrom(B, defaultAll(Default));
  ASSERT_EQ(Conflicts.size(), 1u);
  EXPECT_TRUE(Conflicts[0].AllocConflict);
  EXPECT_EQ(A.find(Root)->Alloc, AllocState::Error);
}

TEST_F(EnvTest, MergeNullSideHasNoObligation) {
  // "if (p != NULL) free(p)": the null side merges cleanly.
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env FreeSide, NullSide;
  RefPath Root = RefPath::var(L);
  SVal Freed = mk(DefState::Dead, NullState::NotNull, AllocState::Kept);
  FreeSide.set(Root, Freed);
  NullSide.set(Root, mk(DefState::Defined, NullState::DefinitelyNull,
                        AllocState::Only));
  std::vector<Env::Conflict> Conflicts =
      FreeSide.mergeFrom(NullSide, defaultAll(Default));
  EXPECT_TRUE(Conflicts.empty());
}

TEST_F(EnvTest, MergeUnreachableSides) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath Root = RefPath::var(L);
  B.set(Root, mk(DefState::Dead, NullState::NotNull, AllocState::Kept));
  B.setUnreachable();
  A.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  EXPECT_TRUE(A.mergeFrom(B, defaultAll(Default)).empty());
  EXPECT_EQ(A.find(Root)->Def, DefState::Defined); // B contributed nothing

  Env C;
  C.setUnreachable();
  EXPECT_TRUE(C.mergeFrom(A, defaultAll(Default)).empty());
  EXPECT_FALSE(C.isUnreachable());
  EXPECT_EQ(C.find(Root)->Alloc, AllocState::Only);
}

TEST_F(EnvTest, MergeUnionsAliases) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath LRoot = RefPath::var(L);
  RefPath Mirror = RefPath::arg(P);
  B.addAlias(LRoot, Mirror);
  A.mergeFrom(B, defaultAll(Default));
  EXPECT_EQ(A.aliasesOf(LRoot).count(Mirror), 1u);
}

} // namespace
