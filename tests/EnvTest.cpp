//===--- EnvTest.cpp - Environment and RefPath unit tests ----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/Env.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace memlint;

namespace {

class EnvTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  VarDecl *L = nullptr;
  ParmVarDecl *P = nullptr;
  FieldDecl *Next = nullptr;
  FieldDecl *ThisF = nullptr;

  void SetUp() override {
    L = Ctx.create<VarDecl>("l", SourceLocation("f.c", 1, 1),
                            Ctx.pointerTo(Ctx.charTy()), Annotations(),
                            StorageClass::None, /*Global=*/false);
    P = Ctx.create<ParmVarDecl>("p", SourceLocation("f.c", 2, 1),
                                Ctx.pointerTo(Ctx.charTy()), Annotations(),
                                0);
    Next = Ctx.create<FieldDecl>("next", SourceLocation("f.c", 3, 1),
                                 Ctx.pointerTo(Ctx.charTy()), Annotations(),
                                 0);
    ThisF = Ctx.create<FieldDecl>("this", SourceLocation("f.c", 4, 1),
                                  Ctx.pointerTo(Ctx.charTy()), Annotations(),
                                  1);
  }

  static PathElem deref() {
    PathElem E;
    E.K = PathElem::Kind::Deref;
    return E;
  }
  static PathElem dot(FieldDecl *F) {
    PathElem E;
    E.K = PathElem::Kind::Dot;
    E.Field = F;
    E.FieldName = F->name();
    return E;
  }
  RefPath arrow(RefPath Base, FieldDecl *F) {
    return Base.child(deref()).child(dot(F));
  }

  static SVal mk(DefState D, NullState N, AllocState A) {
    SVal V;
    V.Def = D;
    V.Null = N;
    V.Alloc = A;
    return V;
  }

  Env::DefaultFn defaultAll(SVal V) {
    return [V](const RefPath &) { return V; };
  }
};

TEST_F(EnvTest, RefPathPrinting) {
  RefPath Root = RefPath::var(L);
  EXPECT_EQ(Root.str(), "l");
  EXPECT_EQ(arrow(Root, Next).str(), "l->next");
  EXPECT_EQ(arrow(arrow(Root, Next), ThisF).str(), "l->next->this");
  EXPECT_EQ(Root.child(deref()).str(), "*l");
  EXPECT_EQ(Root.child(deref()).child(deref()).str(), "**l");
}

TEST_F(EnvTest, PrefixOperations) {
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  RefPath GrandChild = arrow(Child, ThisF);
  EXPECT_TRUE(Child.hasPrefix(Root));
  EXPECT_TRUE(GrandChild.hasPrefix(Child));
  EXPECT_TRUE(GrandChild.hasPrefix(GrandChild));
  EXPECT_FALSE(Root.hasPrefix(Child));

  RefPath Mirror = RefPath::arg(P);
  RefPath Rewritten = GrandChild.withPrefixReplaced(Root, Mirror);
  EXPECT_EQ(Rewritten.str(), "p->next->this");
  EXPECT_EQ(Rewritten.rootKind(), RefPath::RootKind::Arg);
}

TEST_F(EnvTest, ArgAndVarRootsDistinct) {
  RefPath VarRoot = RefPath::var(P);
  RefPath ArgRoot = RefPath::arg(P);
  EXPECT_NE(VarRoot, ArgRoot);
  EXPECT_FALSE(VarRoot.hasPrefix(ArgRoot));
}

//===----------------------------------------------------------------------===//
// Interner
//===----------------------------------------------------------------------===//

TEST_F(EnvTest, InternerDenseIdsAndPrefixQueries) {
  RefInterner I;
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  RefPath GrandChild = arrow(Child, ThisF);

  EXPECT_EQ(I.lookup(Root), InvalidRefId);
  RefId G = I.intern(GrandChild); // interns all prefixes too
  RefId R = I.lookup(Root);
  RefId C = I.lookup(Child);
  ASSERT_NE(R, InvalidRefId);
  ASSERT_NE(C, InvalidRefId);
  EXPECT_EQ(I.intern(GrandChild), G); // stable on re-intern
  EXPECT_EQ(I.path(G), GrandChild);
  EXPECT_EQ(I.depth(R), 0u);
  EXPECT_EQ(I.depth(C), 2u);
  EXPECT_EQ(I.depth(G), 4u);

  EXPECT_TRUE(I.hasPrefix(G, R));
  EXPECT_TRUE(I.hasPrefix(G, C));
  EXPECT_TRUE(I.hasPrefix(G, G));
  EXPECT_FALSE(I.hasPrefix(R, C));

  // Distinct roots never prefix each other.
  RefId M = I.intern(RefPath::arg(P));
  EXPECT_FALSE(I.hasPrefix(G, M));

  std::set<RefId> Desc;
  I.forEachDescendant(R, [&](RefId D) { Desc.insert(D); });
  EXPECT_EQ(Desc.size(), 4u); // *l, l->next, l->next (deref), grandchild
  EXPECT_TRUE(Desc.count(C));
  EXPECT_TRUE(Desc.count(G));
  EXPECT_FALSE(Desc.count(R)); // strict descendants only
  EXPECT_FALSE(Desc.count(M));
}

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

TEST_F(EnvTest, SetAndFind) {
  Env S;
  RefPath Root = RefPath::var(L);
  EXPECT_EQ(S.find(Root), nullptr);
  S.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Temp));
  ASSERT_NE(S.find(Root), nullptr);
  EXPECT_EQ(S.find(Root)->Alloc, AllocState::Temp);
}

TEST_F(EnvTest, CopyIsSharedUntilWritten) {
  auto Interner = std::make_shared<RefInterner>();
  Env A(Interner);
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  A.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  A.set(Child, mk(DefState::Undefined, NullState::Unknown,
                  AllocState::Unqualified));

  Env B = A; // pointer bump
  B.set(Root, mk(DefState::Dead, NullState::NotNull, AllocState::Kept));
  // B sees its write, A is untouched.
  EXPECT_EQ(B.find(Root)->Def, DefState::Dead);
  EXPECT_EQ(A.find(Root)->Def, DefState::Defined);
  EXPECT_EQ(A.find(Child)->Def, DefState::Undefined);
  EXPECT_EQ(B.find(Child)->Def, DefState::Undefined);
}

TEST_F(EnvTest, StatsCountCopiesAndClones) {
  auto Interner = std::make_shared<RefInterner>();
  EnvStats Stats;
  Env A(Interner, 6, &Stats);
  RefPath Root = RefPath::var(L);
  A.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  ASSERT_EQ(Stats.Copies, 0u);
  Env B = A;
  EXPECT_EQ(Stats.Copies, 1u);
  EXPECT_EQ(Stats.ChunkClones, 0u);
  B.set(Root, mk(DefState::Dead, NullState::NotNull, AllocState::Kept));
  EXPECT_EQ(Stats.TableClones, 1u);
  EXPECT_EQ(Stats.ChunkClones, 1u);
}

TEST_F(EnvTest, ItemsSortedByRefPath) {
  Env S;
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  RefPath GrandChild = arrow(Child, ThisF);
  // Insert deepest-first: ids are assigned in intern order, so a sorted
  // snapshot must not just follow ids.
  S.set(GrandChild, mk(DefState::Defined, NullState::NotNull,
                       AllocState::Unqualified));
  S.set(Root, mk(DefState::Defined, NullState::NotNull,
                 AllocState::Unqualified));
  S.set(Child, mk(DefState::Defined, NullState::NotNull,
                  AllocState::Unqualified));
  auto Items = S.items();
  ASSERT_EQ(Items.size(), 3u);
  EXPECT_TRUE(*Items[0].first < *Items[1].first);
  EXPECT_TRUE(*Items[1].first < *Items[2].first);
}

TEST_F(EnvTest, EraseDescendantsKeepsSelf) {
  Env S;
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  S.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Temp));
  S.set(Child, mk(DefState::Undefined, NullState::Unknown,
                  AllocState::Unqualified));
  S.eraseDescendants(Root);
  EXPECT_NE(S.find(Root), nullptr);
  EXPECT_EQ(S.find(Child), nullptr);
}

//===----------------------------------------------------------------------===//
// Aliases
//===----------------------------------------------------------------------===//

TEST_F(EnvTest, AliasSymmetryAndClear) {
  Env S;
  RefPath A = RefPath::var(L);
  RefPath B = RefPath::arg(P);
  S.addAlias(A, B);
  EXPECT_TRUE(S.aliasesOf(A).contains(B));
  EXPECT_TRUE(S.aliasesOf(B).contains(A));
  S.clearAliases(A);
  EXPECT_TRUE(S.aliasesOf(A).empty());
  EXPECT_TRUE(S.aliasesOf(B).empty());
}

TEST_F(EnvTest, AliasViewIteratesInRefPathOrder) {
  // The previous representation stored aliases in std::set<RefPath>;
  // diagnostics iterate them, so the view must keep that order even when
  // links are added in reverse and the list spills past its inline slots.
  Env S;
  RefPath Base = RefPath::var(L);
  RefPath A3 = arrow(arrow(RefPath::arg(P), Next), ThisF);
  RefPath A2 = arrow(RefPath::arg(P), ThisF);
  RefPath A1 = arrow(RefPath::arg(P), Next);
  RefPath A0 = RefPath::arg(P);
  for (const RefPath &A : {A3, A2, A1, A0})
    S.addAlias(Base, A);
  std::vector<RefPath> Got;
  for (const RefPath &A : S.aliasesOf(Base))
    Got.push_back(A);
  ASSERT_EQ(Got.size(), 4u);
  std::set<RefPath> Expect = {A0, A1, A2, A3};
  auto It = Expect.begin();
  for (size_t I = 0; I < Got.size(); ++I, ++It)
    EXPECT_EQ(Got[I], *It) << "position " << I;
}

TEST_F(EnvTest, ExpansionsThroughAliasedPrefix) {
  // l aliases argp: l->next expands to {l->next, argp->next}.
  Env S;
  RefPath LRoot = RefPath::var(L);
  RefPath Mirror = RefPath::arg(P);
  S.addAlias(LRoot, Mirror);
  std::vector<RefPath> Exp = S.expansions(arrow(LRoot, Next));
  ASSERT_EQ(Exp.size(), 2u);
  bool SawMirror = false;
  for (const RefPath &R : Exp)
    if (R.rootKind() == RefPath::RootKind::Arg)
      SawMirror = true;
  EXPECT_TRUE(SawMirror);
}

TEST_F(EnvTest, ExpansionsThroughDerivedAlias) {
  // The Figure 5 situation: l aliases argp->next; writing l->next also
  // covers argp->next->next.
  Env S;
  RefPath LRoot = RefPath::var(L);
  RefPath MirrorNext = arrow(RefPath::arg(P), Next);
  S.addAlias(LRoot, MirrorNext);
  std::vector<RefPath> Exp = S.expansions(arrow(LRoot, Next));
  bool SawDeep = false;
  for (const RefPath &R : Exp)
    if (R.str() == "p->next->next")
      SawDeep = true;
  EXPECT_TRUE(SawDeep);
}

TEST_F(EnvTest, ExpansionsHonorDepthLimit) {
  RefPath LRoot = RefPath::var(L);
  RefPath Deep = arrow(arrow(RefPath::arg(P), Next), Next); // depth 4
  {
    // Rewrites deeper than the env's limit are dropped.
    Env S(std::make_shared<RefInterner>(), /*ExpandDepth=*/4);
    S.addAlias(LRoot, Deep);
    // l->next rewrites to p->next->next->next (depth 6) — over the limit.
    EXPECT_EQ(S.expansions(arrow(LRoot, Next)).size(), 1u);
  }
  {
    // 0 means unlimited, like every -limit* flag.
    Env S(std::make_shared<RefInterner>(), /*ExpandDepth=*/0);
    S.addAlias(LRoot, Deep);
    EXPECT_EQ(S.expansions(arrow(LRoot, Next)).size(), 2u);
  }
}

//===----------------------------------------------------------------------===//
// Phantom-state regressions: eraseDescendants/forget vs alias links
//===----------------------------------------------------------------------===//

TEST_F(EnvTest, EraseDescendantsKeepsAliasLinks) {
  // Rebinding a reference erases descendant values but must not drop the
  // alias relation of the reference itself.
  Env S;
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  RefPath Mirror = RefPath::arg(P);
  S.addAlias(Root, Mirror);
  S.set(Child, mk(DefState::Undefined, NullState::Unknown,
                  AllocState::Unqualified));
  S.eraseDescendants(Root);
  EXPECT_EQ(S.find(Child), nullptr);
  EXPECT_TRUE(S.aliasesOf(Root).contains(Mirror));
  EXPECT_TRUE(S.aliasesOf(Mirror).contains(Root));
}

TEST_F(EnvTest, ForgetScrubsValuesAndAliasLinks) {
  // When a local dies, forget() must remove its values, its descendants'
  // values, its alias entries, and every reverse link pointing at it —
  // otherwise a later merge resurrects phantom state for a dead name.
  Env S;
  RefPath Root = RefPath::var(L);
  RefPath Child = arrow(Root, Next);
  RefPath Mirror = RefPath::arg(P);
  RefPath MirrorChild = arrow(Mirror, Next);
  S.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  S.set(Child, mk(DefState::Undefined, NullState::Unknown,
                  AllocState::Unqualified));
  S.addAlias(Root, Mirror);
  S.addAlias(Child, MirrorChild);
  S.forget(Root);
  EXPECT_EQ(S.find(Root), nullptr);
  EXPECT_EQ(S.find(Child), nullptr);
  EXPECT_TRUE(S.aliasesOf(Root).empty());
  EXPECT_TRUE(S.aliasesOf(Child).empty());
  // The reverse links from the surviving refs are gone too.
  EXPECT_FALSE(S.aliasesOf(Mirror).contains(Root));
  EXPECT_FALSE(S.aliasesOf(MirrorChild).contains(Child));
}

TEST_F(EnvTest, ForgetLeavesUnrelatedAliasesIntact) {
  Env S;
  RefPath Root = RefPath::var(L);
  RefPath Mirror = RefPath::arg(P);
  RefPath MirrorChild = arrow(Mirror, Next);
  S.addAlias(Mirror, MirrorChild);
  S.forget(Root); // never tracked: must be a no-op
  EXPECT_TRUE(S.aliasesOf(Mirror).contains(MirrorChild));
  EXPECT_TRUE(S.aliasesOf(MirrorChild).contains(Mirror));
}

TEST_F(EnvTest, ForgetThenMergeSeesNoPhantomState) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  auto Interner = std::make_shared<RefInterner>();
  Env A(Interner), B(Interner);
  RefPath Root = RefPath::var(L);
  // Branch B released the local, then the local left scope on both paths.
  A.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  B.set(Root, mk(DefState::Dead, NullState::NotNull, AllocState::Kept));
  A.forget(Root);
  B.forget(Root);
  std::vector<Env::Conflict> Conflicts = A.mergeFrom(B, defaultAll(Default));
  EXPECT_TRUE(Conflicts.empty()); // dead name: no branch-state anomaly
  EXPECT_EQ(A.find(Root), nullptr);
}

//===----------------------------------------------------------------------===//
// Merge
//===----------------------------------------------------------------------===//

TEST_F(EnvTest, MergeTakesWeakestDef) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath Root = RefPath::var(L);
  A.set(Root, mk(DefState::Defined, NullState::NotNull,
                 AllocState::Unqualified));
  B.set(Root, mk(DefState::Undefined, NullState::NotNull,
                 AllocState::Unqualified));
  std::vector<Env::Conflict> Conflicts = A.mergeFrom(B, defaultAll(Default));
  EXPECT_TRUE(Conflicts.empty());
  EXPECT_EQ(A.find(Root)->Def, DefState::Undefined);
}

TEST_F(EnvTest, MergeObligationConflictReported) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath Root = RefPath::var(L);
  A.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Kept));
  B.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  std::vector<Env::Conflict> Conflicts = A.mergeFrom(B, defaultAll(Default));
  ASSERT_EQ(Conflicts.size(), 1u);
  EXPECT_TRUE(Conflicts[0].AllocConflict);
  EXPECT_EQ(A.find(Root)->Alloc, AllocState::Error);
}

TEST_F(EnvTest, MergeNullSideHasNoObligation) {
  // "if (p != NULL) free(p)": the null side merges cleanly.
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env FreeSide, NullSide;
  RefPath Root = RefPath::var(L);
  SVal Freed = mk(DefState::Dead, NullState::NotNull, AllocState::Kept);
  FreeSide.set(Root, Freed);
  NullSide.set(Root, mk(DefState::Defined, NullState::DefinitelyNull,
                        AllocState::Only));
  std::vector<Env::Conflict> Conflicts =
      FreeSide.mergeFrom(NullSide, defaultAll(Default));
  EXPECT_TRUE(Conflicts.empty());
}

TEST_F(EnvTest, MergeUnreachableSides) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath Root = RefPath::var(L);
  B.set(Root, mk(DefState::Dead, NullState::NotNull, AllocState::Kept));
  B.setUnreachable();
  A.set(Root, mk(DefState::Defined, NullState::NotNull, AllocState::Only));
  EXPECT_TRUE(A.mergeFrom(B, defaultAll(Default)).empty());
  EXPECT_EQ(A.find(Root)->Def, DefState::Defined); // B contributed nothing

  Env C;
  C.setUnreachable();
  EXPECT_TRUE(C.mergeFrom(A, defaultAll(Default)).empty());
  EXPECT_FALSE(C.isUnreachable());
  EXPECT_EQ(C.find(Root)->Alloc, AllocState::Only);
}

TEST_F(EnvTest, MergeUnionsAliases) {
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env A, B;
  RefPath LRoot = RefPath::var(L);
  RefPath Mirror = RefPath::arg(P);
  B.addAlias(LRoot, Mirror);
  A.mergeFrom(B, defaultAll(Default));
  EXPECT_TRUE(A.aliasesOf(LRoot).contains(Mirror));
}

TEST_F(EnvTest, MergeSharedStateNormalizesDefinitelyNull) {
  // Both branches share the same (unchanged) state, so the COW tables are
  // pointer-identical — yet merge must still normalize definitely-null
  // values (Only becomes Null, erasing the obligation), exactly as the old
  // per-key merge did.
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  auto Interner = std::make_shared<RefInterner>();
  Env A(Interner);
  RefPath Root = RefPath::var(L);
  A.set(Root, mk(DefState::Defined, NullState::DefinitelyNull,
                 AllocState::Only));
  Env B = A; // shares every chunk
  std::vector<Env::Conflict> Conflicts = A.mergeFrom(B, defaultAll(Default));
  EXPECT_TRUE(Conflicts.empty());
  EXPECT_EQ(A.find(Root)->Alloc, AllocState::Null);
}

//===----------------------------------------------------------------------===//
// Randomized equivalence: old std::map-based Env vs the COW representation
//===----------------------------------------------------------------------===//

/// A faithful replica of the pre-interning Env (std::map keyed by RefPath,
/// std::set alias lists) serving as the executable specification. The suite
/// below drives it and the real Env through identical randomized histories
/// and asserts identical merge conflicts and final states.
struct LegacyEnv {
  std::map<RefPath, SVal> Values;
  std::map<RefPath, std::set<RefPath>> Aliases;
  bool Unreachable = false;

  const SVal *find(const RefPath &Ref) const {
    auto It = Values.find(Ref);
    return It == Values.end() ? nullptr : &It->second;
  }
  SVal lookup(const RefPath &Ref, const Env::DefaultFn &Default) const {
    if (const SVal *V = find(Ref))
      return *V;
    return Default(Ref);
  }
  void set(const RefPath &Ref, SVal Val) { Values[Ref] = std::move(Val); }
  void addAlias(const RefPath &A, const RefPath &B) {
    if (A == B)
      return;
    Aliases[A].insert(B);
    Aliases[B].insert(A);
  }
  void forget(const RefPath &Ref) {
    for (auto It = Values.begin(); It != Values.end();) {
      if (It->first.hasPrefix(Ref))
        It = Values.erase(It);
      else
        ++It;
    }
    for (auto It = Aliases.begin(); It != Aliases.end();) {
      if (It->first.hasPrefix(Ref)) {
        It = Aliases.erase(It);
        continue;
      }
      for (auto SIt = It->second.begin(); SIt != It->second.end();) {
        if (SIt->hasPrefix(Ref))
          SIt = It->second.erase(SIt);
        else
          ++SIt;
      }
      if (It->second.empty())
        It = Aliases.erase(It);
      else
        ++It;
    }
  }

  std::vector<Env::Conflict> mergeFrom(const LegacyEnv &Other,
                                       const Env::DefaultFn &Default) {
    std::vector<Env::Conflict> Conflicts;
    if (Other.Unreachable)
      return Conflicts;
    if (Unreachable) {
      *this = Other;
      return Conflicts;
    }
    std::set<RefPath> Keys;
    for (const auto &KV : Values)
      Keys.insert(KV.first);
    for (const auto &KV : Other.Values)
      Keys.insert(KV.first);
    for (const RefPath &Ref : Keys) {
      SVal Ours = lookup(Ref, Default);
      SVal Theirs = Other.lookup(Ref, Default);
      AllocState OursAlloc = Ours.Alloc;
      AllocState TheirsAlloc = Theirs.Alloc;
      DefState OursDef = Ours.Def;
      DefState TheirsDef = Theirs.Def;
      if (Ours.Null == NullState::DefinitelyNull) {
        OursAlloc = AllocState::Null;
        if (TheirsDef == DefState::Dead)
          OursDef = DefState::Dead;
      }
      if (Theirs.Null == NullState::DefinitelyNull) {
        TheirsAlloc = AllocState::Null;
        if (OursDef == DefState::Dead)
          TheirsDef = DefState::Dead;
      }
      bool DefConflict = false, AllocConflict = false;
      SVal Merged;
      Merged.Def = mergeDef(OursDef, TheirsDef, DefConflict);
      Merged.Null = mergeNull(Ours.Null, Theirs.Null);
      Merged.Alloc = mergeAlloc(OursAlloc, TheirsAlloc, AllocConflict);
      Merged.NullLoc = Ours.mayBeNull()
                           ? Ours.NullLoc
                           : (Theirs.mayBeNull() ? Theirs.NullLoc
                                                 : Ours.NullLoc);
      Merged.AllocLoc =
          Ours.AllocLoc.isValid() ? Ours.AllocLoc : Theirs.AllocLoc;
      Merged.FreeLoc = Ours.FreeLoc.isValid() ? Ours.FreeLoc : Theirs.FreeLoc;
      Merged.DefLoc =
          Ours.Def != DefState::Defined ? Ours.DefLoc : Theirs.DefLoc;
      if (DefConflict || AllocConflict) {
        Env::Conflict C;
        C.Ref = Ref;
        C.DefConflict = DefConflict;
        C.AllocConflict = AllocConflict;
        C.Ours = Ours;
        C.Theirs = Theirs;
        Conflicts.push_back(std::move(C));
      }
      Values[Ref] = std::move(Merged);
    }
    for (const auto &KV : Other.Aliases)
      for (const RefPath &Alias : KV.second)
        Aliases[KV.first].insert(Alias);
    return Conflicts;
  }
};

bool sameVal(const SVal &A, const SVal &B) {
  return A.Def == B.Def && A.Null == B.Null && A.Alloc == B.Alloc &&
         A.NullLoc == B.NullLoc && A.AllocLoc == B.AllocLoc &&
         A.FreeLoc == B.FreeLoc && A.DefLoc == B.DefLoc;
}

class EnvEquivalenceTest : public EnvTest {
protected:
  // Deterministic xorshift PRNG: the suite must reproduce bit-for-bit.
  uint64_t Rng = 0x9E3779B97F4A7C15ull;
  uint64_t next() {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  }
  size_t pick(size_t N) { return static_cast<size_t>(next() % N); }

  /// Universe of paths: both roots, derived up to depth 4.
  std::vector<RefPath> universe() {
    std::vector<RefPath> Paths;
    std::vector<RefPath> Frontier = {RefPath::var(L), RefPath::arg(P)};
    for (int Depth = 0; Depth < 2; ++Depth) {
      std::vector<RefPath> NextFrontier;
      for (const RefPath &Base : Frontier) {
        Paths.push_back(Base);
        NextFrontier.push_back(arrow(Base, Next));
        NextFrontier.push_back(arrow(Base, ThisF));
      }
      Frontier = std::move(NextFrontier);
    }
    for (const RefPath &Base : Frontier)
      Paths.push_back(Base);
    return Paths;
  }

  /// Interesting abstract values, including the definitely-null states the
  /// merge normalizes and obligation states that conflict.
  std::vector<SVal> palette() {
    SourceLocation L1("a.c", 10, 1), L2("a.c", 20, 2), L3("a.c", 30, 3);
    std::vector<SVal> Vals;
    auto Add = [&](DefState D, NullState N, AllocState A) {
      SVal V = mk(D, N, A);
      V.NullLoc = L1;
      V.AllocLoc = L2;
      V.DefLoc = L3;
      if (D == DefState::Dead)
        V.FreeLoc = L2;
      Vals.push_back(V);
    };
    Add(DefState::Defined, NullState::NotNull, AllocState::Unqualified);
    Add(DefState::Undefined, NullState::Unknown, AllocState::Unqualified);
    Add(DefState::Defined, NullState::PossiblyNull, AllocState::Only);
    Add(DefState::Defined, NullState::DefinitelyNull, AllocState::Only);
    Add(DefState::Defined, NullState::DefinitelyNull, AllocState::Null);
    Add(DefState::Dead, NullState::NotNull, AllocState::Kept);
    Add(DefState::Defined, NullState::NotNull, AllocState::Fresh);
    Add(DefState::Allocated, NullState::NotNull, AllocState::Owned);
    Add(DefState::Defined, NullState::RelNull, AllocState::Shared);
    Add(DefState::PartiallyDefined, NullState::NotNull, AllocState::Temp);
    Add(DefState::Defined, NullState::NotNull, AllocState::Observer);
    return Vals;
  }
};

TEST_F(EnvEquivalenceTest, RandomizedMergesMatchLegacySemantics) {
  const std::vector<RefPath> Paths = universe();
  const std::vector<SVal> Vals = palette();
  SVal Default = mk(DefState::Defined, NullState::NotNull,
                    AllocState::Unqualified);
  Env::DefaultFn DefaultFn = defaultAll(Default);

  for (int Trial = 0; Trial < 200; ++Trial) {
    auto Interner = std::make_shared<RefInterner>();
    Env NewA(Interner), NewB(Interner);
    LegacyEnv OldA, OldB;

    // Random histories applied identically to both representations. Copy
    // NewB from NewA halfway through some trials so merges hit shared
    // chunks, the path the COW skip optimizes.
    size_t Ops = 4 + pick(12);
    bool ForkB = Trial % 3 == 0;
    for (size_t I = 0; I < Ops; ++I) {
      if (ForkB && I == Ops / 2) {
        NewB = NewA;
        OldB = OldA;
      }
      bool ToA = !ForkB || I < Ops / 2 ? pick(2) == 0 : false;
      Env &NE = ToA ? NewA : NewB;
      LegacyEnv &OE = ToA ? OldA : OldB;
      switch (pick(4)) {
      case 0:
      case 1: {
        const RefPath &Ref = Paths[pick(Paths.size())];
        const SVal &V = Vals[pick(Vals.size())];
        NE.set(Ref, V);
        OE.set(Ref, V);
        break;
      }
      case 2: {
        const RefPath &X = Paths[pick(Paths.size())];
        const RefPath &Y = Paths[pick(Paths.size())];
        NE.addAlias(X, Y);
        OE.addAlias(X, Y);
        break;
      }
      case 3: {
        const RefPath &Ref = Paths[pick(Paths.size())];
        NE.forget(Ref);
        OE.forget(Ref);
        break;
      }
      }
    }

    std::vector<Env::Conflict> NewConf = NewA.mergeFrom(NewB, DefaultFn);
    std::vector<Env::Conflict> OldConf = OldA.mergeFrom(OldB, DefaultFn);

    ASSERT_EQ(NewConf.size(), OldConf.size()) << "trial " << Trial;
    for (size_t I = 0; I < NewConf.size(); ++I) {
      EXPECT_EQ(NewConf[I].Ref, OldConf[I].Ref) << "trial " << Trial;
      EXPECT_EQ(NewConf[I].DefConflict, OldConf[I].DefConflict);
      EXPECT_EQ(NewConf[I].AllocConflict, OldConf[I].AllocConflict);
      EXPECT_TRUE(sameVal(NewConf[I].Ours, OldConf[I].Ours));
      EXPECT_TRUE(sameVal(NewConf[I].Theirs, OldConf[I].Theirs));
    }

    // Identical post-merge values...
    ASSERT_EQ(NewA.size(), OldA.Values.size()) << "trial " << Trial;
    auto Items = NewA.items();
    size_t Idx = 0;
    for (const auto &KV : OldA.Values) {
      ASSERT_LT(Idx, Items.size());
      EXPECT_EQ(*Items[Idx].first, KV.first) << "trial " << Trial;
      EXPECT_TRUE(sameVal(*Items[Idx].second, KV.second))
          << "trial " << Trial << " ref " << KV.first.str();
      ++Idx;
    }
    // ...and identical alias relations, in identical iteration order.
    for (const RefPath &Ref : Paths) {
      auto It = OldA.Aliases.find(Ref);
      std::vector<RefPath> OldList(It == OldA.Aliases.end()
                                       ? std::vector<RefPath>{}
                                       : std::vector<RefPath>(
                                             It->second.begin(),
                                             It->second.end()));
      std::vector<RefPath> NewList;
      for (const RefPath &A : NewA.aliasesOf(Ref))
        NewList.push_back(A);
      EXPECT_EQ(NewList, OldList) << "trial " << Trial << " ref "
                                  << Ref.str();
    }
  }
}

TEST_F(EnvEquivalenceTest, RandomizedExpansionsMatchLegacySubstitution) {
  const std::vector<RefPath> Paths = universe();
  for (int Trial = 0; Trial < 100; ++Trial) {
    Env S;
    std::map<RefPath, std::set<RefPath>> Aliases;
    size_t Links = 1 + pick(5);
    for (size_t I = 0; I < Links; ++I) {
      const RefPath &X = Paths[pick(Paths.size())];
      const RefPath &Y = Paths[pick(Paths.size())];
      if (X == Y)
        continue;
      S.addAlias(X, Y);
      Aliases[X].insert(Y);
      Aliases[Y].insert(X);
    }
    const RefPath &Ref = Paths[pick(Paths.size())];

    // Legacy algorithm: substitute each aliased prefix once, depth <= 6.
    std::set<RefPath> Expect;
    Expect.insert(Ref);
    RefPath Prefix(Ref.rootKind(), Ref.root());
    std::vector<RefPath> Prefixes = {Prefix};
    for (const PathElem &E : Ref.elems()) {
      Prefix = Prefix.child(E);
      Prefixes.push_back(Prefix);
    }
    for (const RefPath &Pfx : Prefixes) {
      auto It = Aliases.find(Pfx);
      if (It == Aliases.end())
        continue;
      for (const RefPath &Alias : It->second) {
        RefPath Rewritten = Ref.withPrefixReplaced(Pfx, Alias);
        if (Rewritten.depth() <= 6)
          Expect.insert(std::move(Rewritten));
      }
    }

    std::vector<RefPath> Got = S.expansions(Ref);
    EXPECT_EQ(Got, std::vector<RefPath>(Expect.begin(), Expect.end()))
        << "trial " << Trial << " ref " << Ref.str();
  }
}

} // namespace
