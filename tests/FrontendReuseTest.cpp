//===--- FrontendReuseTest.cpp - Shared front-end reuse tests ---------------===//
//
// Part of memlint. See DESIGN.md §5c.
//
// The memoized-#include / interned-spelling layer has one contract: it is
// invisible. Diagnostics, token streams, and deterministic counters must be
// byte-identical with the cache on or off, across job counts, and under
// truncating budgets. These tests pin the contract and the cache-key
// machinery (macro-state fingerprints) that upholds it.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/BatchDriver.h"
#include "pp/Preprocessor.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

std::vector<std::string> spellings(const std::vector<Token> &Toks) {
  std::vector<std::string> Out;
  for (const Token &T : Toks)
    if (!T.isEof())
      Out.push_back(T.Text);
  return Out;
}

/// One preprocessor run against \p Ctx (build role while unpublished, read
/// role after), with metrics collected.
struct PpRun {
  std::vector<std::string> Spellings;
  MetricsSnapshot Metrics;
  unsigned Diags = 0;
};

PpRun runPp(const VFS &Files, const std::string &Main,
            FrontendContext *Ctx = nullptr) {
  MetricsRegistry Registry;
  DiagnosticEngine Diags;
  TokenArena Arena;
  if (Ctx) {
    if (Ctx->published())
      Arena.SharedRead = &Ctx->Interner;
    else
      Arena.SharedBuild = &Ctx->Interner;
  }
  Preprocessor PP(Files, Diags);
  PP.setMetrics(&Registry);
  PP.setTokenArena(&Arena);
  PP.setFrontend(Ctx);
  PpRun R;
  R.Spellings = spellings(PP.process(Main));
  R.Metrics = Registry.takeSnapshot();
  R.Diags = static_cast<unsigned>(Diags.diagnostics().size());
  return R;
}

unsigned long long counter(const MetricsSnapshot &M, const std::string &K) {
  auto It = M.Counters.find(K);
  return It == M.Counters.end() ? 0 : It->second;
}

//===--- macro-state fingerprints ------------------------------------------===//

TEST(MacroFingerprintTest, DefineChangesAndUndefRestores) {
  MacroTable T;
  const std::uint64_t Empty = T.fingerprint();
  MacroDef D;
  Token B;
  B.Kind = TokenKind::IntegerLiteral;
  B.Text = Spelling(internGlobalSpelling("42"));
  D.Body.push_back(B);
  T.define("N", D);
  const std::uint64_t WithN = T.fingerprint();
  EXPECT_NE(Empty, WithN);
  T.undef("N");
  EXPECT_EQ(Empty, T.fingerprint());
}

TEST(MacroFingerprintTest, OrderIndependent) {
  MacroDef A, B;
  MacroTable T1, T2;
  T1.define("A", A);
  T1.define("B", B);
  T2.define("B", B);
  T2.define("A", A);
  EXPECT_EQ(T1.fingerprint(), T2.fingerprint());
}

TEST(MacroFingerprintTest, BodyAndLocationSensitive) {
  Token One, Two;
  One.Kind = Two.Kind = TokenKind::IntegerLiteral;
  One.Text = Spelling(internGlobalSpelling("1"));
  Two.Text = Spelling(internGlobalSpelling("2"));
  MacroDef D1, D2;
  D1.Body.push_back(One);
  D2.Body.push_back(Two);
  MacroTable T1, T2;
  T1.define("M", D1);
  T2.define("M", D2);
  EXPECT_NE(T1.fingerprint(), T2.fingerprint());

  // Same body text at a different source location is still a different
  // definition: expanded tokens carry locations into diagnostics.
  MacroDef D3 = D1;
  D3.Body[0].Loc = SourceLocation("other.h", 7, 3);
  MacroTable T3;
  T3.define("M", D3);
  EXPECT_NE(T1.fingerprint(), T3.fingerprint());
}

TEST(MacroFingerprintTest, RedefineRetractsOldDefinition) {
  Token One;
  One.Kind = TokenKind::IntegerLiteral;
  One.Text = Spelling(internGlobalSpelling("1"));
  MacroDef D1;
  D1.Body.push_back(One);
  MacroTable T1, T2;
  T1.define("M", MacroDef());
  T1.define("M", D1); // redefine: the empty definition must not linger
  T2.define("M", D1);
  EXPECT_EQ(T1.fingerprint(), T2.fingerprint());
}

//===--- include memoization ------------------------------------------------===//

// The macro-state fingerprint is definition-location sensitive, so for two
// translation units to share a cached expansion of size.h their LIMIT
// definitions must come from the same place — a context header, as in real
// corpora. A #define written directly in each .c file keys differently on
// purpose (its body tokens carry that file's locations).
VFS headerCorpus() {
  VFS Files;
  Files.add("size.h", "int buf[LIMIT];\n");
  Files.add("ctx4.h", "#define LIMIT 4\n");
  Files.add("ctx8.h", "#define LIMIT 8\n");
  Files.add("a.c", "#include \"ctx4.h\"\n#include \"size.h\"\n");
  Files.add("b.c", "#include \"ctx8.h\"\n#include \"size.h\"\n");
  Files.add("a2.c", "#include \"ctx4.h\"\n#include \"size.h\"\n");
  return Files;
}

TEST(IncludeMemoTest, ReplayMatchesLiveExpansion) {
  VFS Files = headerCorpus();
  PpRun Plain = runPp(Files, "a.c");

  FrontendContext Ctx;
  PpRun Warm = runPp(Files, "a.c", &Ctx);
  Ctx.publish();
  PpRun Replayed = runPp(Files, "a2.c", &Ctx); // same macro context
  EXPECT_EQ(Plain.Spellings, Warm.Spellings);
  EXPECT_EQ(Plain.Spellings, Replayed.Spellings);
  EXPECT_GE(counter(Replayed.Metrics, "pp.include_cache.hit"), 1u);
  EXPECT_GT(counter(Replayed.Metrics, "pp.include_cache.bytes_saved"), 0u);
}

TEST(IncludeMemoTest, DifferentMacroContextMisses) {
  VFS Files = headerCorpus();
  FrontendContext Ctx;
  runPp(Files, "a.c", &Ctx); // caches size.h under LIMIT=4
  Ctx.publish();
  PpRun B = runPp(Files, "b.c", &Ctx); // LIMIT=8: the key must differ
  EXPECT_EQ(counter(B.Metrics, "pp.include_cache.hit"), 0u);
  EXPECT_GE(counter(B.Metrics, "pp.include_cache.miss"), 1u);
  // And the expansion really reflects this file's macro context.
  std::vector<std::string> Expected = {"int", "buf", "[", "8", "]", ";"};
  EXPECT_EQ(B.Spellings, Expected);
}

// Regression: a header that redefines a macro mid-file must replay its
// #define/#undef side effects, or text after a cached #include would expand
// under stale macro state.
TEST(IncludeMemoTest, ReplayAppliesMacroMutations) {
  VFS Files;
  Files.add("stage.h", "#define STAGE 1\n");
  Files.add("redef.h", "int before = STAGE;\n"
                       "#undef STAGE\n"
                       "#define STAGE 2\n"
                       "int inside = STAGE;\n");
  Files.add("u1.c", "#include \"stage.h\"\n#include \"redef.h\"\n"
                    "int after = STAGE;\n");
  Files.add("u2.c", "#include \"stage.h\"\n#include \"redef.h\"\n"
                    "int after = STAGE;\n");
  PpRun Plain = runPp(Files, "u1.c");

  FrontendContext Ctx;
  runPp(Files, "u1.c", &Ctx);
  Ctx.publish();
  PpRun Replayed = runPp(Files, "u2.c", &Ctx);
  EXPECT_GE(counter(Replayed.Metrics, "pp.include_cache.hit"), 1u);
  EXPECT_EQ(Plain.Spellings, Replayed.Spellings);
  // The post-include use saw the header's redefinition, not the stale 1.
  ASSERT_GE(Plain.Spellings.size(), 2u);
  EXPECT_EQ(Plain.Spellings[Plain.Spellings.size() - 2], "2");
}

TEST(IncludeMemoTest, VfsReadCacheCounters) {
  VFS Files = headerCorpus();
  FrontendContext Ctx;
  PpRun Warm = runPp(Files, "a.c", &Ctx);
  EXPECT_GE(counter(Warm.Metrics, "vfs.read.miss"), 2u); // a.c + size.h
  EXPECT_EQ(counter(Warm.Metrics, "vfs.read.hit"), 0u);
  Ctx.publish();
  PpRun Hit = runPp(Files, "a2.c", &Ctx);
  EXPECT_GE(counter(Hit.Metrics, "vfs.read.hit"), 1u); // size.h (cached)
  EXPECT_GE(counter(Hit.Metrics, "vfs.read.miss"), 1u); // a2.c itself
}

//===--- interner roles -----------------------------------------------------===//

TEST(SharedInternerTest, PublishThenLockFreeLookup) {
  SharedInterner Pool;
  const std::string *Foo = Pool.intern("foo");
  ASSERT_NE(Foo, nullptr);
  EXPECT_FALSE(Pool.published());
  Pool.publish();
  EXPECT_TRUE(Pool.published());
  EXPECT_EQ(Pool.lookup("foo"), Foo);
  EXPECT_EQ(Pool.lookup("bar"), nullptr);
}

TEST(SharedInternerTest, ReadRoleFallsBackPrivately) {
  SharedInterner Pool;
  const std::string *Foo = Pool.intern("foo");
  Pool.publish();
  TokenArena Arena;
  Arena.SharedRead = &Pool;
  EXPECT_EQ(Arena.intern("foo"), Foo); // shared hit: same allocation
  const std::string *Bar = Arena.intern("bar");
  ASSERT_NE(Bar, nullptr);
  EXPECT_EQ(*Bar, "bar");
  EXPECT_EQ(Arena.SharedHits, 1u);
  EXPECT_EQ(Arena.PrivateInterned, 1u);
}

//===--- whole-pipeline byte-identity ---------------------------------------===//

corpus::Program sharedHeaderProgram() {
  corpus::GenOptions O;
  O.Modules = 4;
  O.FunctionsPerModule = 6;
  O.SharedHeaders = 2;
  O.Seed = 1234;
  return corpus::syntheticProgram(O);
}

BatchResult runBatch(const corpus::Program &P, bool Shared, unsigned Jobs,
                     unsigned MaxTokens = 0) {
  BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.SharedFrontend = Shared;
  Opts.Check.FrontendCache = Shared;
  Opts.CollectMetrics = true;
  if (MaxTokens != 0)
    Opts.Check.Flags.limits().MaxTokens = MaxTokens;
  BatchDriver Driver(Opts);
  return Driver.run(P.Files, P.MainFiles);
}

TEST(FrontendReuseBatchTest, SharedHeaderCorpusShape) {
  corpus::Program P = sharedHeaderProgram();
  EXPECT_TRUE(P.Files.exists("shared0.h"));
  EXPECT_TRUE(P.Files.exists("shared1.h"));
  for (const std::string &Main : P.MainFiles) {
    std::optional<std::string> Src = P.Files.read(Main);
    ASSERT_TRUE(Src.has_value());
    EXPECT_NE(Src->find("#include \"shared0.h\""), std::string::npos);
    EXPECT_NE(Src->find("#include \"shared1.h\""), std::string::npos);
  }
}

TEST(FrontendReuseBatchTest, ByteIdenticalAcrossCacheAndJobs) {
  corpus::Program P = sharedHeaderProgram();
  BatchResult Off = runBatch(P, false, 1);
  BatchResult On1 = runBatch(P, true, 1);
  BatchResult On8 = runBatch(P, true, 8);
  EXPECT_EQ(Off.render(), On1.render());
  EXPECT_EQ(On1.render(), On8.render());
  EXPECT_EQ(Off.TotalAnomalies, On1.TotalAnomalies);
  EXPECT_GT(counter(On1.Metrics, "pp.include_cache.hit"), 0u);
  EXPECT_EQ(counter(Off.Metrics, "pp.include_cache.hit"), 0u);
  // Deterministic worker counters (everything except wall-clock timers and
  // the cache/interner/warmup blocks) are unaffected by job count.
  EXPECT_EQ(counter(On1.Metrics, "pp.tokens"), counter(On8.Metrics,
                                                       "pp.tokens"));
  EXPECT_EQ(counter(On1.Metrics, "pp.include_cache.hit"),
            counter(On8.Metrics, "pp.include_cache.hit"));
}

// The replay path refuses entries larger than the remaining token budget
// (truncation must happen live, mid-include, exactly where an uncached run
// stops). A budget small enough to truncate must still yield byte-identical
// output with the cache on.
TEST(FrontendReuseBatchTest, ByteIdenticalUnderTruncatingBudget) {
  corpus::Program P = sharedHeaderProgram();
  for (unsigned MaxTokens : {40u, 200u, 1000u}) {
    BatchResult Off = runBatch(P, false, 1, MaxTokens);
    BatchResult On = runBatch(P, true, 1, MaxTokens);
    EXPECT_EQ(Off.render(), On.render()) << "MaxTokens=" << MaxTokens;
    EXPECT_EQ(Off.DegradedCount, On.DegradedCount)
        << "MaxTokens=" << MaxTokens;
  }
}

TEST(FrontendReuseBatchTest, GeneratedSharedHeadersCheckCleanly) {
  corpus::Program P = sharedHeaderProgram();
  BatchResult R = runBatch(P, true, 2);
  EXPECT_EQ(R.TotalAnomalies, 0u) << R.render();
  EXPECT_EQ(R.CrashCount, 0u);
}

} // namespace
