//===--- FuzzTest.cpp - Differential fuzzing harness ----------------------===//
//
// Part of memlint. See DESIGN.md.
//
// The fuzzing harness's contract: generated programs are pure functions of
// their seed (byte-identical regeneration, the --fuzz-repro guarantee),
// mutations are deterministic, every injected fault is contained by the
// pipeline (Degraded or InternalError, never an escape or a clean Ok), the
// minimizer shrinks to a locally minimal reproducer within its probe
// budget, per-class anomaly counts survive a journal round trip, and a
// whole small campaign is clean and reproducible.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Mutator.h"

#include "checker/Checker.h"
#include "driver/BatchDriver.h"
#include "support/FaultInjector.h"
#include "support/Journal.h"
#include "support/Rand.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

using namespace memlint;
using namespace memlint::fuzz;

namespace {

/// A leaky program with enough tokens and statements to pass any
/// checkpoint ordinal a test arms a fault at.
const char *LeakSource = "#include <stdlib.h>\n"
                         "int work(int n)\n"
                         "{\n"
                         "  char *p = (char *) malloc(16);\n"
                         "  int acc = n;\n"
                         "  acc = acc + 1;\n"
                         "  acc = acc + 2;\n"
                         "  acc = acc + 3;\n"
                         "  return acc;\n"
                         "}\n";

//===----------------------------------------------------------------------===//
// Generator fleet determinism
//===----------------------------------------------------------------------===//

TEST(FuzzGeneration, ByteIdenticalRegenerationFromSeed) {
  FuzzOptions Opts;
  Opts.MutatedPercent = 40;
  Opts.FaultEvery = 4;
  for (unsigned I = 0; I < 64; ++I) {
    const std::uint64_t Seed = mixSeed(9001, I);
    FuzzProgram A = generateFuzzProgram(Seed, I, Opts);
    FuzzProgram B = generateFuzzProgram(Seed, I, Opts);
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    EXPECT_EQ(A.Seed, B.Seed);
    EXPECT_EQ(A.HasExpectedBug, B.HasExpectedBug);
    EXPECT_EQ(A.Mutated, B.Mutated);
    EXPECT_EQ(A.Injected, B.Injected);
    if (A.Injected) {
      EXPECT_EQ(A.Fault, B.Fault);
      EXPECT_EQ(A.FireAt, B.FireAt);
    }
  }
}

TEST(FuzzGeneration, FleetIsDiverse) {
  FuzzOptions Opts;
  std::set<std::string> Sources;
  bool SawClean = false, SawBug = false, SawMutant = false;
  for (unsigned I = 0; I < 64; ++I) {
    FuzzProgram P = generateFuzzProgram(mixSeed(Opts.Seed, I), I, Opts);
    Sources.insert(P.Source);
    SawClean |= !P.HasExpectedBug;
    SawBug |= P.HasExpectedBug;
    SawMutant |= P.Mutated;
  }
  // Distinct seeds overwhelmingly produce distinct programs.
  EXPECT_GT(Sources.size(), 48u);
  EXPECT_TRUE(SawClean);
  EXPECT_TRUE(SawBug);
  EXPECT_TRUE(SawMutant);
}

TEST(FuzzGeneration, InjectionFollowsFaultEvery) {
  FuzzOptions Opts;
  Opts.FaultEvery = 4;
  unsigned Injected = 0;
  for (unsigned I = 0; I < 40; ++I) {
    FuzzProgram P = generateFuzzProgram(mixSeed(Opts.Seed, I), I, Opts);
    if (P.Injected)
      ++Injected;
  }
  EXPECT_GT(Injected, 0u);

  Opts.FaultEvery = 0; // injection disabled entirely
  for (unsigned I = 0; I < 40; ++I)
    EXPECT_FALSE(
        generateFuzzProgram(mixSeed(Opts.Seed, I), I, Opts).Injected);
}

//===----------------------------------------------------------------------===//
// Mutation engine
//===----------------------------------------------------------------------===//

TEST(FuzzMutation, DeterministicPerSeed) {
  const std::string Base = "#include <stdlib.h>\n"
                           "int take(/*@only@*/ int *p)\n"
                           "{\n"
                           "  int v = *p;\n"
                           "  free((void *) p);\n"
                           "  return v;\n"
                           "}\n";
  for (unsigned K = 0; K < NumMutationKinds; ++K) {
    const MutationKind Kind = static_cast<MutationKind>(K);
    SplitMix64 R1(42), R2(42);
    EXPECT_EQ(applyMutation(Base, Kind, R1), applyMutation(Base, Kind, R2))
        << mutationKindName(Kind);
  }
}

TEST(FuzzMutation, EveryKindHasAName) {
  std::set<std::string> Names;
  for (unsigned K = 0; K < NumMutationKinds; ++K)
    Names.insert(mutationKindName(static_cast<MutationKind>(K)));
  EXPECT_EQ(Names.size(), NumMutationKinds);
}

//===----------------------------------------------------------------------===//
// Fault injection containment (the harness's core safety property)
//===----------------------------------------------------------------------===//

/// Every fault kind, fired at the very first checkpoint, must end in its
/// documented contained outcome — never an abort, never a clean Ok.
TEST(FuzzContainment, AllFaultKindsContainedAtFirstCheckpoint) {
  struct Case {
    FaultKind Kind;
    CheckStatus Expected;
    const char *Reason;
  } Cases[] = {
      {FaultKind::Alloc, CheckStatus::InternalError, "internal-error"},
      {FaultKind::Budget, CheckStatus::Degraded, "fault-budget"},
      {FaultKind::Cancel, CheckStatus::Degraded, "fault-cancel"},
  };
  for (const Case &C : Cases) {
    FaultInjector Injector(C.Kind, /*FireAtCheckpoint=*/0);
    CheckOptions Opts;
    Opts.Faults = &Injector;
    CheckResult R = Checker::checkSource(LeakSource, Opts);
    EXPECT_TRUE(Injector.fired()) << faultKindName(C.Kind);
    EXPECT_EQ(R.Status, C.Expected) << faultKindName(C.Kind);
    EXPECT_NE(std::find(R.DegradationReasons.begin(),
                        R.DegradationReasons.end(), C.Reason),
              R.DegradationReasons.end())
        << faultKindName(C.Kind) << " reasons missing " << C.Reason;
  }
}

/// The same (input, fault) pair fires at the same checkpoint count on every
/// run — containment findings are as seed-addressable as the programs.
TEST(FuzzContainment, CheckpointCountsAreDeterministic) {
  unsigned long long First = 0;
  for (int Run = 0; Run < 3; ++Run) {
    FaultInjector Injector(FaultKind::Budget, /*FireAtCheckpoint=*/25);
    CheckOptions Opts;
    Opts.Faults = &Injector;
    Checker::checkSource(LeakSource, Opts);
    ASSERT_TRUE(Injector.fired());
    if (Run == 0)
      First = Injector.seen();
    else
      EXPECT_EQ(Injector.seen(), First);
  }
}

/// A fault armed past the last checkpoint never fires and the run is a
/// normal full analysis.
TEST(FuzzContainment, UnfiredFaultLeavesRunUntouched) {
  FaultInjector Injector(FaultKind::Alloc, /*FireAtCheckpoint=*/100000000UL);
  CheckOptions Opts;
  Opts.Faults = &Injector;
  CheckResult R = Checker::checkSource(LeakSource, Opts);
  EXPECT_FALSE(Injector.fired());
  EXPECT_EQ(R.Status, CheckStatus::Ok);
  EXPECT_EQ(R.anomalyCount(), 1u); // the leak is still found
}

/// OnBeforeAttempt lets the harness arm per-file injectors inside the
/// batch driver; a Budget fault on attempt 1 surfaces as a Degraded
/// outcome with the injector's reason, without touching other files.
TEST(FuzzContainment, BatchDriverArmsInjectorPerFile) {
  VFS Files;
  Files.add("clean.c", "int id(int x) { return x; }\n");
  Files.add("victim.c", LeakSource);

  FaultInjector Injector(FaultKind::Budget, /*FireAtCheckpoint=*/0);
  BatchOptions Opts;
  Opts.OnBeforeAttempt = [&](const std::string &File, unsigned Attempt,
                             CheckOptions &Check) {
    if (File == "victim.c" && Attempt == 1)
      Check.Faults = &Injector;
  };
  BatchResult R = BatchDriver(Opts).run(Files, {"clean.c", "victim.c"});

  ASSERT_EQ(R.Outcomes.size(), 2u);
  EXPECT_EQ(R.Outcomes[0].Kind, FileOutcomeKind::Ok);
  EXPECT_EQ(R.Outcomes[1].Kind, FileOutcomeKind::Degraded);
  EXPECT_EQ(R.Outcomes[1].Attempts, 1u); // Degraded is terminal, no retry
  EXPECT_NE(std::find(R.Outcomes[1].Reasons.begin(),
                      R.Outcomes[1].Reasons.end(), "fault-budget"),
            R.Outcomes[1].Reasons.end());
  EXPECT_TRUE(Injector.fired());
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(FuzzMinimizer, ShrinksToThePredicateCore) {
  std::string Source;
  for (int I = 0; I < 40; ++I)
    Source += "int filler" + std::to_string(I) + ";\n";
  Source += "int MARKER;\n";
  for (int I = 40; I < 80; ++I)
    Source += "int filler" + std::to_string(I) + ";\n";

  std::string Min = minimizeSource(Source, [](const std::string &S) {
    return S.find("MARKER") != std::string::npos;
  });
  EXPECT_EQ(Min, "int MARKER;\n");
}

TEST(FuzzMinimizer, UninterestingInputReturnedUnchanged) {
  const std::string Source = "line one\nline two\n";
  EXPECT_EQ(minimizeSource(Source,
                           [](const std::string &) { return false; }),
            Source);
}

TEST(FuzzMinimizer, ProbeBudgetIsRespected) {
  std::string Source;
  for (int I = 0; I < 200; ++I)
    Source += "int v" + std::to_string(I) + ";\n";
  unsigned Probes = 0;
  minimizeSource(
      Source,
      [&](const std::string &S) {
        ++Probes;
        return S.find("v0;") != std::string::npos;
      },
      /*MaxProbes=*/25);
  EXPECT_LE(Probes, 25u);
}

TEST(FuzzMinimizer, DeterministicResult) {
  std::string Source;
  for (int I = 0; I < 30; ++I)
    Source += (I % 7 == 0 ? "int keep" : "int drop") + std::to_string(I) +
              ";\n";
  auto Pred = [](const std::string &S) {
    return S.find("keep0;") != std::string::npos &&
           S.find("keep7;") != std::string::npos;
  };
  EXPECT_EQ(minimizeSource(Source, Pred), minimizeSource(Source, Pred));
}

//===----------------------------------------------------------------------===//
// Journal round trip for per-class counts
//===----------------------------------------------------------------------===//

TEST(FuzzJournal, ClassesSurviveRoundTrip) {
  JournalEntry E;
  E.File = "fuzz_000001_00000000deadbeef.c";
  E.Status = "ok";
  E.Anomalies = 3;
  E.Classes["mustfree"] = 2;
  E.Classes["usereleased"] = 1;

  const std::string Line = journalEntryLine(E);
  EXPECT_NE(Line.find("\"classes\":{"), std::string::npos);

  JournalContents C =
      parseJournal(journalHeaderLine("0123456789abcdef", 1) + "\n" + Line +
                   "\n");
  ASSERT_EQ(C.Entries.size(), 1u);
  EXPECT_EQ(C.Entries[0].Classes, E.Classes);
}

TEST(FuzzJournal, EmptyClassesKeepHistoricalByteFormat) {
  JournalEntry E;
  E.File = "plain.c";
  E.Status = "ok";
  EXPECT_EQ(journalEntryLine(E).find("classes"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Whole-campaign behavior
//===----------------------------------------------------------------------===//

TEST(FuzzCampaign, SmallCampaignIsCleanAndReproducible) {
  FuzzOptions Opts;
  Opts.Count = 48;
  Opts.Seed = 7;
  Opts.Jobs = 2;
  Opts.FaultEvery = 4;

  FuzzResult A = runFuzzCampaign(Opts);
  EXPECT_TRUE(A.clean()) << A.summary();
  EXPECT_EQ(A.Programs, 48u);
  EXPECT_GT(A.Scored, 0u);
  EXPECT_GT(A.Fired, 0u);
  EXPECT_EQ(A.ContainmentViolations, 0u);
  EXPECT_EQ(A.CrashFreedomViolations, 0u);
  EXPECT_DOUBLE_EQ(A.crashFreedomRate(), 1.0);
  EXPECT_DOUBLE_EQ(A.containmentRate(), 1.0);

  // Same seed, different job count: identical classification.
  FuzzOptions Opts1 = Opts;
  Opts1.Jobs = 1;
  FuzzResult B = runFuzzCampaign(Opts1);
  EXPECT_EQ(A.summary(), B.summary());
  EXPECT_EQ(A.PerKind.size(), B.PerKind.size());
  for (const auto &[Kind, S] : A.PerKind) {
    const KindScore &T = B.PerKind.at(Kind);
    EXPECT_EQ(S.TP, T.TP) << Kind;
    EXPECT_EQ(S.FN, T.FN) << Kind;
    EXPECT_EQ(S.FP, T.FP) << Kind;
  }
}

TEST(FuzzCampaign, BenchJsonHasTheRatchetShape) {
  FuzzOptions Opts;
  Opts.Count = 16;
  Opts.Seed = 3;
  Opts.Jobs = 2;
  FuzzResult R = runFuzzCampaign(Opts);
  const std::string Json = renderBenchDifferentialJson(R, Opts);

  for (const char *Key :
       {"\"memlint_bench\": \"differential\"", "\"campaign_seed\": 3",
        "\"programs\": 16", "\"precision\":", "\"per_kind\":",
        "\"crash_freedom\":", "\"containment\":", "\"misclassified\":",
        "\"static\":", "\"oracle\":"})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;
  EXPECT_FALSE(Json.empty());
  EXPECT_EQ(Json.back(), '\n');
}

/// The statically detectable classes score perfect recall on the pristine
/// fleet; the paper's 1996-missed classes score zero — and both facts come
/// out of the campaign, not the table.
TEST(FuzzCampaign, RecallMatchesDetectabilityTable) {
  FuzzOptions Opts;
  Opts.Count = 120;
  Opts.Seed = 11;
  Opts.Jobs = 2;
  Opts.MutatedPercent = 0; // pristine fleet: every program is scored
  Opts.FaultEvery = 0;
  FuzzResult R = runFuzzCampaign(Opts);
  EXPECT_TRUE(R.clean()) << R.summary();

  for (corpus::BugKind K : corpus::allBugKinds()) {
    auto It = R.PerKind.find(corpus::bugKindName(K));
    if (It == R.PerKind.end())
      continue; // kind not drawn in this fleet
    const KindScore &S = It->second;
    if (corpus::staticallyDetectable(K))
      EXPECT_DOUBLE_EQ(S.recall(), 1.0) << corpus::bugKindName(K);
    else
      EXPECT_DOUBLE_EQ(S.recall(), 0.0) << corpus::bugKindName(K);
    EXPECT_EQ(S.FP, 0u) << corpus::bugKindName(K);
  }
}

} // namespace
