//===--- InferTest.cpp - Call graph and annotation inference tests -------------===//
//
// Part of memlint. See DESIGN.md §6h.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnnotationInfer.h"
#include "analysis/CallGraph.h"
#include "checker/Checker.h"
#include "checker/Frontend.h"
#include "corpus/Corpus.h"
#include "driver/BatchDriver.h"
#include "support/Flags.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>

using namespace memlint;

namespace {

//===--- call graph ------------------------------------------------------------===//

TEST(CallGraphTest, EdgesAndBottomUpOrder) {
  Frontend FE;
  TranslationUnit *TU = FE.parseSource("void leaf(void) { }\n"
                                       "void mid(void) { leaf(); }\n"
                                       "void top(void) { mid(); leaf(); }\n",
                                       "cg.c", /*IncludePrelude=*/false);
  CallGraph CG(*TU);
  EXPECT_EQ(CG.nodeCount(), 3u);
  const FunctionDecl *Leaf = TU->findFunction("leaf");
  const FunctionDecl *Mid = TU->findFunction("mid");
  const FunctionDecl *Top = TU->findFunction("top");
  ASSERT_EQ(CG.callees(Top).size(), 2u);
  EXPECT_EQ(CG.callees(Mid).size(), 1u);
  EXPECT_EQ(CG.callees(Mid)[0], Leaf);
  ASSERT_EQ(CG.callers(Leaf).size(), 2u);
  // Bottom-up (callee-first): leaf before mid before top.
  const auto &SCCs = CG.bottomUpSCCs();
  ASSERT_EQ(SCCs.size(), 3u);
  size_t LeafAt = 0, MidAt = 0, TopAt = 0;
  for (size_t I = 0; I < SCCs.size(); ++I) {
    if (SCCs[I][0] == Leaf)
      LeafAt = I;
    else if (SCCs[I][0] == Mid)
      MidAt = I;
    else if (SCCs[I][0] == Top)
      TopAt = I;
  }
  EXPECT_LT(LeafAt, MidAt);
  EXPECT_LT(MidAt, TopAt);
  EXPECT_FALSE(CG.isRecursive(Top));
}

TEST(CallGraphTest, MutualRecursionFormsOneSCC) {
  Frontend FE;
  TranslationUnit *TU = FE.parseSource(
      "int odd(int n);\n"
      "int even(int n) { if (n == 0) return 1; return odd(n - 1); }\n"
      "int odd(int n) { if (n == 0) return 0; return even(n - 1); }\n"
      "int use(int n) { return even(n); }\n",
      "rec.c", /*IncludePrelude=*/false);
  CallGraph CG(*TU);
  const FunctionDecl *Even = TU->findFunction("even");
  const FunctionDecl *Odd = TU->findFunction("odd");
  const auto &SCCs = CG.bottomUpSCCs();
  ASSERT_EQ(SCCs.size(), 2u);
  // The cycle collapses to one SCC, before its caller. Members sort by
  // first-declaration source order: odd's forward declaration comes first.
  ASSERT_EQ(SCCs[0].size(), 2u);
  EXPECT_EQ(SCCs[0][0], Odd);
  EXPECT_EQ(SCCs[0][1], Even);
  EXPECT_EQ(SCCs[1][0], TU->findFunction("use"));
  EXPECT_TRUE(CG.isRecursive(Even));
  EXPECT_TRUE(CG.isRecursive(Odd));
  EXPECT_FALSE(CG.isRecursive(TU->findFunction("use")));
}

TEST(CallGraphTest, SelfRecursionDetected) {
  Frontend FE;
  TranslationUnit *TU = FE.parseSource(
      "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n",
      "self.c", /*IncludePrelude=*/false);
  CallGraph CG(*TU);
  EXPECT_TRUE(CG.isRecursive(TU->findFunction("fact")));
  EXPECT_EQ(CG.bottomUpSCCs().size(), 1u);
}

TEST(CallGraphTest, UndefinedCalleesStayOutOfSCCOrder) {
  Frontend FE;
  TranslationUnit *TU = FE.parseSource("extern void ext(void);\n"
                                       "void f(void) { ext(); }\n",
                                       "und.c", /*IncludePrelude=*/false);
  CallGraph CG(*TU);
  EXPECT_EQ(CG.nodeCount(), 1u);
  EXPECT_EQ(CG.bottomUpSCCs().size(), 1u);
  // The edge itself is still visible.
  ASSERT_EQ(CG.callees(TU->findFunction("f")).size(), 1u);
}

//===--- derivation rules ------------------------------------------------------===//

/// Runs inference over one source and returns the frontend (owning the TU)
/// plus the rendered header.
std::string inferHeader(const std::string &Source, InferStats *Stats = nullptr) {
  Frontend FE;
  TranslationUnit *TU = FE.parseSource(Source, "infer.c");
  EXPECT_TRUE(FE.diags().empty()) << FE.diags().str();
  FlagSet Flags;
  AnnotationInfer Infer(*TU, Flags);
  InferStats S = Infer.run();
  if (Stats)
    *Stats = S;
  return Infer.renderHeader();
}

TEST(AnnotationInferTest, AllocatorGetsOnlyNullReturn) {
  std::string H = inferHeader(
      "char *mk(int n) {\n"
      "  char *p = (char *) malloc(n);\n"
      "  if (p == NULL) return NULL;\n"
      "  *p = 0;\n"
      "  return p;\n"
      "}\n");
  EXPECT_EQ(H, "extern /*@null@*/ /*@only@*/ char *mk(int n);\n");
}

TEST(AnnotationInferTest, ConsumerGetsOnlyNullParam) {
  std::string H = inferHeader(
      "void drop(char *p) { if (p != NULL) { free((void *) p); } }\n");
  EXPECT_EQ(H, "extern void drop(/*@null@*/ /*@only@*/ char *p);\n");
}

TEST(AnnotationInferTest, ReaderGetsTempParam) {
  std::string H = inferHeader(
      "int peek(char *p) { if (p == NULL) return 0; return *p; }\n");
  EXPECT_EQ(H, "extern int peek(/*@null@*/ /*@temp@*/ char *p);\n");
}

TEST(AnnotationInferTest, UnguardedDerefGetsNotnull) {
  std::string H = inferHeader("int get(int *p) { return *p; }\n");
  EXPECT_EQ(H, "extern int get(/*@notnull@*/ /*@temp@*/ int *p);\n");
}

TEST(AnnotationInferTest, NullPredicateGetsTruenull) {
  // The body only tests p against NULL (no deref), so the parameter keeps
  // the implied temp without null; the predicate itself becomes truenull.
  InferStats Stats;
  std::string H = inferHeader(
      "int isnil(char *p) { return p == NULL; }\n", &Stats);
  EXPECT_EQ(H, "extern /*@truenull@*/ int isnil(/*@temp@*/ char *p);\n");
  EXPECT_GT(Stats.AnnotationsAdded, 0u);
}

TEST(AnnotationInferTest, UserAnnotationsAreNeverOverwritten) {
  // The user wrote keep; inference must leave the category alone even
  // though the body consumes the parameter's obligation elsewhere.
  std::string H = inferHeader(
      "void hold(/*@keep@*/ char *p) { if (p != NULL) free((void *) p); }\n");
  EXPECT_NE(H.find("/*@keep@*/"), std::string::npos) << H;
  EXPECT_EQ(H.find("/*@only@*/"), std::string::npos) << H;
}

TEST(AnnotationInferTest, BottomUpPropagationThroughWrapper) {
  // wrapper() forwards to drop(); once drop's parameter is inferred only,
  // the caller's parameter is observed as consumed and becomes only too.
  // Nullability does not propagate — wrapper's body never tests p.
  std::string H = inferHeader(
      "void drop(char *p) { if (p != NULL) { free((void *) p); } }\n"
      "void wrapper(char *p) { drop(p); }\n");
  EXPECT_EQ(H,
            "extern void drop(/*@null@*/ /*@only@*/ char *p);\n"
            "extern void wrapper(/*@only@*/ char *p);\n");
}

TEST(AnnotationInferTest, MutuallyRecursiveSCCReachesFixpoint) {
  // walk/step release the list across a two-function cycle; the fixpoint
  // iterations inside the SCC must converge on only for both parameters.
  InferStats Stats;
  std::string H = inferHeader(
      "typedef struct _cell { int v; /*@null@*/ /*@only@*/ struct _cell *next; } cell;\n"
      "void step(cell *c);\n"
      "void walk(cell *c) {\n"
      "  if (c != NULL) { step(c); }\n"
      "}\n"
      "void step(cell *c) {\n"
      "  cell *n = c->next;\n"
      "  c->next = NULL;\n"
      "  free((void *) c);\n"
      "  walk(n);\n"
      "}\n",
      &Stats);
  EXPECT_NE(H.find("void walk(/*@null@*/ /*@only@*/ cell *c);"),
            std::string::npos)
      << H;
  EXPECT_NE(H.find("void step("), std::string::npos) << H;
  EXPECT_GE(Stats.MaxSCCSize, 2u);
  // The recursive SCC iterated more than once to reach its fixpoint.
  EXPECT_GT(Stats.Iterations, Stats.SCCs);
}

TEST(AnnotationInferTest, InferenceIsIdempotent) {
  const std::string Source =
      "char *mk(int n) {\n"
      "  char *p = (char *) malloc(n);\n"
      "  if (p == NULL) return NULL;\n"
      "  *p = 0;\n"
      "  return p;\n"
      "}\n"
      "void drop(char *p) { if (p != NULL) { free((void *) p); } }\n";
  CheckOptions Options;
  Options.Infer = true;
  CheckResult First = Checker::checkSource(Source, Options, "idem.c");
  ASSERT_FALSE(First.InferredHeader.empty());
  EXPECT_EQ(First.anomalyCount(), 0u);
  // Re-check the sources together with the inferred header: the header is
  // its own fixed point, byte for byte.
  VFS Files;
  Files.add("idem.c", Source);
  Files.add("inferred.h", First.InferredHeader);
  CheckResult Second =
      Checker::checkFiles(Files, {"idem.c", "inferred.h"}, Options);
  EXPECT_EQ(Second.InferredHeader, First.InferredHeader);
  EXPECT_EQ(Second.anomalyCount(), 0u);
}

TEST(AnnotationInferTest, NoNewFalsePositives) {
  // A function the verifier cannot annotate cleanly: inference must leave
  // the run's findings no worse than the plain run's.
  const std::string Source =
      "void half(char *p, int b) {\n"
      "  if (b) { free((void *) p); }\n"
      "}\n"
      "int main(void) { half((char *) malloc(4), 1); return 0; }\n";
  CheckResult Plain = Checker::checkSource(Source, CheckOptions(), "fp.c");
  CheckOptions Options;
  Options.Infer = true;
  CheckResult Inferred = Checker::checkSource(Source, Options, "fp.c");
  EXPECT_LE(Inferred.anomalyCount(), Plain.anomalyCount())
      << Inferred.render();
}

TEST(AnnotationInferTest, CrossFileCalleesResolveInOneProgram) {
  // The callee lives in another file of the same program; the call graph
  // spans the concatenated translation unit, so the caller still observes
  // the inferred interface.
  VFS Files;
  Files.add("a.c", "void drop(char *p) { if (p != NULL) free((void *) p); }\n");
  Files.add("b.c", "void drop(char *p);\n"
                   "void fwd(char *p) { drop(p); }\n");
  CheckOptions Options;
  Options.Infer = true;
  CheckResult R = Checker::checkFiles(Files, {"a.c", "b.c"}, Options);
  EXPECT_NE(R.InferredHeader.find("extern void fwd(/*@only@*/ char *p);"),
            std::string::npos)
      << R.InferredHeader;
}

TEST(AnnotationInferTest, FingerprintSeparatesInferredRuns) {
  CheckOptions Plain;
  CheckOptions Inferring;
  Inferring.Infer = true;
  EXPECT_NE(checkOptionsFingerprint(Plain),
            checkOptionsFingerprint(Inferring));
}

TEST(AnnotationInferTest, MetricsCountersEmitted) {
  CheckOptions Options;
  Options.Infer = true;
  Options.CollectMetrics = true;
  CheckResult R = Checker::checkSource(
      "void drop(char *p) { if (p != NULL) free((void *) p); }\n", Options,
      "m.c");
  EXPECT_EQ(R.Metrics.Counters.at("infer.functions"), 1u);
  EXPECT_GT(R.Metrics.Counters.at("infer.annotations"), 0u);
  EXPECT_EQ(R.Metrics.Counters.count("infer.errors"), 1u);
  EXPECT_TRUE(R.Metrics.TimersMs.count("phase.infer"));
}

//===--- sec7 parity -----------------------------------------------------------===//

TEST(AnnotationInferTest, Sec7UnannotatedCorpusRecoversCleanInterfaces) {
  // The acceptance gate in miniature: the hand-annotated corpus checks
  // clean; stripping the module annotations and inferring them back must
  // also check clean (>= 95% finding parity with zero new false positives
  // reduces to exactly this when the annotated baseline has no findings).
  corpus::GenOptions Gen;
  Gen.Modules = 2;
  Gen.FunctionsPerModule = 10;
  corpus::Program Annotated = corpus::syntheticProgram(Gen);
  Gen.UnannotatedModules = true;
  corpus::Program Stripped = corpus::syntheticProgram(Gen);

  CheckOptions Plain;
  for (const std::string &Main : Annotated.MainFiles) {
    CheckResult R = Checker::checkFiles(Annotated.Files, {Main}, Plain);
    EXPECT_EQ(R.anomalyCount(), 0u) << Main << ":\n" << R.render();
  }
  CheckOptions Infer;
  Infer.Infer = true;
  for (const std::string &Main : Stripped.MainFiles) {
    CheckResult Bare = Checker::checkFiles(Stripped.Files, {Main}, Plain);
    EXPECT_GT(Bare.anomalyCount(), 0u) << Main; // stripping really hurts
    CheckResult R = Checker::checkFiles(Stripped.Files, {Main}, Infer);
    EXPECT_EQ(R.anomalyCount(), 0u) << Main << ":\n" << R.render();
    EXPECT_FALSE(R.InferredHeader.empty());
  }
}

TEST(CorpusTest, UnannotatedModulesKeepHeaderAnnotations) {
  corpus::GenOptions Gen;
  Gen.Modules = 1;
  Gen.FunctionsPerModule = 4;
  Gen.SharedHeaders = 1;
  Gen.UnannotatedModules = true;
  corpus::Program P = corpus::syntheticProgram(Gen);
  // Field annotations in gen.h (outside inference's scope) survive; the
  // module sources carry none.
  EXPECT_NE(P.Files.read("gen.h")->find("/*@"), std::string::npos);
  EXPECT_NE(P.Files.read("shared0.h")->find("/*@"), std::string::npos);
  EXPECT_EQ(P.Files.read("mod0.c")->find("/*@"), std::string::npos);
}

//===--- batch, journal, and resume --------------------------------------------===//

/// Runs an inferring batch over the sec7 corpus at the given job count and
/// returns the combined header (outcome fragments in input order).
std::string batchHeader(const corpus::Program &P, unsigned Jobs,
                        const std::string &JournalPath = "",
                        bool Resume = false) {
  BatchOptions Options;
  Options.Check.Infer = true;
  Options.Jobs = Jobs;
  Options.JournalPath = JournalPath;
  Options.Resume = Resume;
  BatchDriver Driver(Options);
  BatchResult R = Driver.run(P.Files, P.MainFiles);
  std::string Header;
  for (const FileOutcome &O : R.Outcomes)
    Header += O.Inferred;
  return Header;
}

TEST(AnnotationInferTest, BatchHeaderByteIdenticalAcrossJobCounts) {
  corpus::GenOptions Gen;
  Gen.Modules = 4;
  Gen.FunctionsPerModule = 6;
  Gen.UnannotatedModules = true;
  corpus::Program P = corpus::syntheticProgram(Gen);
  const std::string J1 = batchHeader(P, 1);
  const std::string J8 = batchHeader(P, 8);
  EXPECT_FALSE(J1.empty());
  EXPECT_EQ(J1, J8);
}

TEST(AnnotationInferTest, ResumedBatchReplaysInferredHeader) {
  corpus::GenOptions Gen;
  Gen.Modules = 3;
  Gen.FunctionsPerModule = 5;
  Gen.UnannotatedModules = true;
  corpus::Program P = corpus::syntheticProgram(Gen);
  const std::string Path = "infer_resume_test.jsonl";
  std::remove(Path.c_str());
  const std::string Fresh = batchHeader(P, 2, Path);
  // Resume with everything journaled: nothing is re-checked, yet the
  // combined header is byte-identical.
  const std::string Resumed = batchHeader(P, 2, Path, /*Resume=*/true);
  EXPECT_FALSE(Fresh.empty());
  EXPECT_EQ(Fresh, Resumed);
  std::remove(Path.c_str());
}

TEST(JournalTest, InferredFieldRoundTrips) {
  JournalEntry E;
  E.File = "a.c";
  E.Status = "ok";
  E.Inferred = "extern void f(/*@only@*/ char *p);\n";
  const std::string Line = journalEntryLine(E);
  EXPECT_NE(Line.find("\"inferred\""), std::string::npos);
  JournalContents C = parseJournal(journalHeaderLine("0123", 1) + "\n" +
                                   Line + "\n");
  ASSERT_EQ(C.Entries.size(), 1u);
  EXPECT_EQ(C.Entries[0].Inferred, E.Inferred);
}

TEST(JournalTest, InferredFieldOmittedWhenEmpty) {
  JournalEntry E;
  E.File = "a.c";
  E.Status = "ok";
  EXPECT_EQ(journalEntryLine(E).find("inferred"), std::string::npos);
}

//===--- output-path preflight -------------------------------------------------===//

TEST(JournalTest, PreflightAcceptsWritableAndRejectsMissingDir) {
  EXPECT_TRUE(preflightWritePath("preflight_probe_target.json"));
  // The probe must not create the target itself.
  EXPECT_EQ(readFileText("preflight_probe_target.json"), std::nullopt);
  EXPECT_FALSE(
      preflightWritePath("no/such/directory/anywhere/out.json"));
}

TEST(JournalTest, PreflightLeavesExistingContentsAlone) {
  const std::string Path = "preflight_existing.json";
  ASSERT_TRUE(writeFileText(Path, "keep me"));
  EXPECT_TRUE(preflightWritePath(Path));
  EXPECT_EQ(readFileText(Path), std::optional<std::string>("keep me"));
  std::remove(Path.c_str());
}

} // namespace
