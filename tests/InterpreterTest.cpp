//===--- InterpreterTest.cpp - Run-time baseline tests -------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "checker/Frontend.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::corpus;

namespace {

RunResult run(const std::string &Source) {
  Frontend FE;
  TranslationUnit *TU = FE.parseSource(Source);
  EXPECT_TRUE(FE.diags().empty()) << FE.diags().str();
  Interpreter I(*TU);
  return I.run();
}

TEST(InterpTest, ReturnsExitCode) {
  RunResult R = run("int main(void) { return 7; }");
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_TRUE(R.Errors.empty());
}

TEST(InterpTest, ArithmeticAndControlFlow) {
  RunResult R = run("int main(void) {\n"
                    "  int acc = 0;\n"
                    "  int i;\n"
                    "  for (i = 1; i <= 10; i = i + 1) {\n"
                    "    if (i % 2 == 0) { acc = acc + i; }\n"
                    "  }\n"
                    "  return acc;\n"
                    "}");
  EXPECT_EQ(R.ExitCode, 30); // 2+4+6+8+10
}

TEST(InterpTest, FunctionsAndRecursion) {
  RunResult R = run("int fib(int n) {\n"
                    "  if (n < 2) { return n; }\n"
                    "  return fib(n - 1) + fib(n - 2);\n"
                    "}\n"
                    "int main(void) { return fib(10); }");
  EXPECT_EQ(R.ExitCode, 55);
}

TEST(InterpTest, PrintfOutputCaptured) {
  RunResult R = run("int main(void) {\n"
                    "  printf(\"n=%d s=%s c=%c%%\\n\", 42, \"hi\", 'x');\n"
                    "  return 0;\n"
                    "}");
  EXPECT_EQ(R.Output, "n=42 s=hi c=x%\n");
}

TEST(InterpTest, StringBuiltins) {
  RunResult R = run("int main(void) {\n"
                    "  char buf[32];\n"
                    "  strcpy(buf, \"abc\");\n"
                    "  strcat(buf, \"def\");\n"
                    "  if (strcmp(buf, \"abcdef\") != 0) { return 1; }\n"
                    "  return (int) strlen(buf);\n"
                    "}");
  EXPECT_EQ(R.ExitCode, 6);
  EXPECT_TRUE(R.Errors.empty());
}

TEST(InterpTest, StructsAndPointers) {
  RunResult R = run("struct pt { int x; int y; };\n"
                    "int main(void) {\n"
                    "  struct pt a;\n"
                    "  struct pt b;\n"
                    "  struct pt *p = &a;\n"
                    "  p->x = 3;\n"
                    "  p->y = 4;\n"
                    "  b = a;\n"
                    "  return b.x * 10 + b.y;\n"
                    "}");
  EXPECT_EQ(R.ExitCode, 34);
  EXPECT_TRUE(R.Errors.empty());
}

TEST(InterpTest, HeapRoundTrip) {
  RunResult R = run("int main(void) {\n"
                    "  int *p = (int *) malloc(sizeof(int));\n"
                    "  int v;\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  *p = 9;\n"
                    "  v = *p;\n"
                    "  free((void *) p);\n"
                    "  return v;\n"
                    "}");
  EXPECT_EQ(R.ExitCode, 9);
  EXPECT_TRUE(R.Errors.empty());
}

TEST(InterpTest, NullDerefDetected) {
  RunResult R = run("int main(void) {\n"
                    "  int *p = NULL;\n"
                    "  return *p;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::NullDeref));
  EXPECT_FALSE(R.Completed);
}

TEST(InterpTest, UseAfterFreeDetected) {
  RunResult R = run("int main(void) {\n"
                    "  int *p = (int *) malloc(sizeof(int));\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  *p = 1;\n"
                    "  free((void *) p);\n"
                    "  return *p;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::UseAfterFree));
}

TEST(InterpTest, DoubleFreeDetected) {
  RunResult R = run("int main(void) {\n"
                    "  int *p = (int *) malloc(sizeof(int));\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  *p = 0;\n"
                    "  free((void *) p);\n"
                    "  free((void *) p);\n"
                    "  return 0;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::DoubleFree));
}

TEST(InterpTest, UndefinedReadDetectedAndContinues) {
  RunResult R = run("int main(void) {\n"
                    "  int *p = (int *) malloc(sizeof(int));\n"
                    "  int v;\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  v = *p;\n"
                    "  free((void *) p);\n"
                    "  return v;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::UndefRead));
  EXPECT_TRUE(R.Completed); // Purify-style: report and continue
}

TEST(InterpTest, OffsetFreeDetected) {
  RunResult R = run("int main(void) {\n"
                    "  char *p = (char *) malloc(8);\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  p[0] = 'x';\n"
                    "  p += 2;\n"
                    "  free((void *) p);\n"
                    "  return 0;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::OffsetFree));
}

TEST(InterpTest, StaticFreeDetected) {
  RunResult R = run("static int g;\n"
                    "int main(void) {\n"
                    "  int *p = &g;\n"
                    "  free((void *) p);\n"
                    "  return 0;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::BadFree));
}

TEST(InterpTest, LeakAtExitDetected) {
  RunResult R = run("int main(void) {\n"
                    "  char *p = (char *) malloc(8);\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  p[0] = 'x';\n"
                    "  return 0;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::LeakAtExit));
  EXPECT_TRUE(R.Completed);
}

TEST(InterpTest, FreeNullIsAllowed) {
  RunResult R = run("int main(void) { free(NULL); return 0; }");
  EXPECT_TRUE(R.Errors.empty());
}

TEST(InterpTest, AssertFailureDetected) {
  RunResult R = run("int main(void) { assert(1 == 2); return 0; }");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::AssertFailed));
}

TEST(InterpTest, ExitStopsExecution) {
  RunResult R = run("int main(void) {\n"
                    "  printf(\"before\\n\");\n"
                    "  exit(3);\n"
                    "  printf(\"after\\n\");\n"
                    "  return 0;\n"
                    "}");
  EXPECT_EQ(R.Output, "before\n");
  EXPECT_EQ(R.ExitCode, 3);
  EXPECT_TRUE(R.Completed);
}

TEST(InterpTest, OutOfBoundsDetected) {
  RunResult R = run("int main(void) {\n"
                    "  char *p = (char *) malloc(4);\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  p[10] = 'x';\n"
                    "  free((void *) p);\n"
                    "  return 0;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::OutOfBounds));
}

TEST(InterpTest, InfiniteLoopTrapped) {
  Frontend FE;
  TranslationUnit *TU =
      FE.parseSource("int main(void) { while (1) { } return 0; }");
  Interpreter I(*TU);
  RunResult R = I.run("main", /*MaxSteps=*/10000);
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::Trap));
}

TEST(InterpTest, SwitchDispatchAndFallthrough) {
  RunResult R = run("int pick(int k) {\n"
                    "  int acc = 0;\n"
                    "  switch (k) {\n"
                    "  case 1: acc = acc + 1;\n"
                    "  case 2: acc = acc + 2; break;\n"
                    "  default: acc = 100;\n"
                    "  }\n"
                    "  return acc;\n"
                    "}\n"
                    "int main(void) {\n"
                    "  return pick(1) * 100 + pick(2) * 10 + pick(9);\n"
                    "}");
  EXPECT_EQ(R.ExitCode, 3 * 100 + 2 * 10 + 100);
}

TEST(InterpTest, EmployeeDatabaseRunsToCompletion) {
  Program P = employeeDb(DbVersion::Fixed);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  ASSERT_TRUE(FE.diags().empty()) << FE.diags().str();
  Interpreter I(*TU);
  RunResult R = I.run();
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 0);
  // Output contains the hires and query results.
  EXPECT_NE(R.Output.find("Dana 1001 70000"), std::string::npos);
  EXPECT_NE(R.Output.find("female managers: 2"), std::string::npos);
  // The only residual errors are the static-pool blocks never released —
  // the paper's "storage reachable from global and static variables".
  for (const RuntimeError &E : R.Errors)
    EXPECT_EQ(E.K, RuntimeError::Kind::LeakAtExit) << E.str();
  EXPECT_EQ(R.Errors.size(), 2u);
}

TEST(InterpTest, DriverLeaksObservableAtRuntime) {
  // The OnlyAdded stage (without the six frees) leaks at run time too.
  Program P = employeeDb(DbVersion::OnlyAdded);
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  Interpreter I(*TU);
  RunResult R = I.run();
  EXPECT_TRUE(R.Completed);
  unsigned Leaks = 0;
  for (const RuntimeError &E : R.Errors)
    if (E.K == RuntimeError::Kind::LeakAtExit)
      ++Leaks;
  // Six driver leaks plus the two pool blocks.
  EXPECT_EQ(Leaks, 8u);
}

// Every seeded bug class is caught at run time.
class SeededBugRuntimeTest : public ::testing::TestWithParam<BugKind> {};

TEST_P(SeededBugRuntimeTest, DetectedAtRuntime) {
  Program P = seededBug(GetParam());
  Frontend FE;
  TranslationUnit *TU = FE.parseProgram(P.Files, P.MainFiles);
  ASSERT_TRUE(FE.diags().empty()) << FE.diags().str();
  Interpreter I(*TU);
  RunResult R = I.run();
  EXPECT_FALSE(R.Errors.empty()) << bugKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SeededBugRuntimeTest,
    ::testing::ValuesIn(allBugKinds()),
    [](const ::testing::TestParamInfo<BugKind> &Info) {
      std::string Name = bugKindName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace

namespace {

TEST(InterpTest, CallocZeroInitializes) {
  RunResult R = run("int main(void) {\n"
                    "  int *p = (int *) calloc(4, sizeof(int));\n"
                    "  int v;\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  v = p[0] + p[3];\n"
                    "  free((void *) p);\n"
                    "  return v;\n"
                    "}");
  EXPECT_TRUE(R.Errors.empty());
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(InterpTest, MemcpyAndMemset) {
  RunResult R = run("int main(void) {\n"
                    "  char a[8];\n"
                    "  char b[8];\n"
                    "  memset(a, 7, 8);\n"
                    "  memcpy(b, a, 8);\n"
                    "  return b[5];\n"
                    "}");
  EXPECT_TRUE(R.Errors.empty());
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(InterpTest, StrncpyAndStrncmp) {
  RunResult R = run("int main(void) {\n"
                    "  char buf[8];\n"
                    "  strncpy(buf, \"abcdef\", 8);\n"
                    "  if (strncmp(buf, \"abcxyz\", 3) != 0) { return 1; }\n"
                    "  if (strncmp(buf, \"abcxyz\", 4) == 0) { return 2; }\n"
                    "  return 0;\n"
                    "}");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(InterpTest, ReallocPreservesPrefix) {
  RunResult R = run("int main(void) {\n"
                    "  int *p = (int *) malloc(2 * sizeof(int));\n"
                    "  int v;\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  p[0] = 11;\n"
                    "  p[1] = 22;\n"
                    "  p = (int *) realloc((void *) p, 4 * sizeof(int));\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  v = p[0] + p[1];\n"
                    "  free((void *) p);\n"
                    "  return v;\n"
                    "}");
  EXPECT_TRUE(R.Errors.empty()) << (R.Errors.empty() ? "" : R.Errors[0].str());
  EXPECT_EQ(R.ExitCode, 33);
}

TEST(InterpTest, ReallocOfFreedDetected) {
  RunResult R = run("int main(void) {\n"
                    "  char *p = (char *) malloc(4);\n"
                    "  if (p == NULL) { return 1; }\n"
                    "  free((void *) p);\n"
                    "  p = (char *) realloc((void *) p, 8);\n"
                    "  return 0;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::UseAfterFree));
}

TEST(InterpTest, DanglingStackPointerDetected) {
  // Frames are killed on return: using a pointer to a dead frame's local
  // is a use-after-free at run time.
  RunResult R = run("int *escape(void) {\n"
                    "  int local = 5;\n"
                    "  return &local;\n"
                    "}\n"
                    "int main(void) {\n"
                    "  int *p = escape();\n"
                    "  return *p;\n"
                    "}");
  EXPECT_TRUE(R.hasError(RuntimeError::Kind::UseAfterFree));
}

} // namespace
