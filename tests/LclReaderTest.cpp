//===--- LclReaderTest.cpp - LCL specification reader tests --------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "lcl/LclReader.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

using namespace memlint;

namespace {

std::string translate(const std::string &Lcl) {
  DiagnosticEngine Diags;
  return translateLclToC(Lcl, "spec.lcl", Diags);
}

TEST(LclReaderTest, AnnotationWordsBecomeComments) {
  std::string Out = translate("only char *mk(temp char *src);");
  EXPECT_NE(Out.find("/*@only@*/ char *mk(/*@temp@*/ char *src);"),
            std::string::npos)
      << Out;
}

TEST(LclReaderTest, PaperMallocSpec) {
  // "null out only void *malloc (size_t size);" — the paper's exact LCL
  // form of the allocator specification.
  std::string Out = translate("null out only void *malloc(size_t size);");
  EXPECT_NE(Out.find("/*@null@*/ /*@out@*/ /*@only@*/ void "
                     "*malloc(size_t size);"),
            std::string::npos)
      << Out;
}

TEST(LclReaderTest, PaperStrcpySpec) {
  std::string Out =
      translate("char *strcpy(out returned unique char *s1, char *s2);");
  EXPECT_NE(Out.find("/*@out@*/ /*@returned@*/ /*@unique@*/ char *s1"),
            std::string::npos)
      << Out;
}

TEST(LclReaderTest, ImportsDropped) {
  std::string Out = translate("imports employee;\nint f(int x);\n");
  EXPECT_EQ(Out.find("imports"), std::string::npos);
  EXPECT_NE(Out.find("int f(int x);"), std::string::npos);
}

TEST(LclReaderTest, RequiresClauseDropped) {
  // "The requires clause is not interpreted by LCLint."
  std::string Out = translate("int top(erc c) {\n"
                              "  requires size(c) > 0;\n"
                              "}\n");
  EXPECT_EQ(Out.find("requires"), std::string::npos);
  EXPECT_EQ(Out.find("size(c) > 0"), std::string::npos);
}

TEST(LclReaderTest, SpecBodyBecomesDeclaration) {
  std::string Out = translate("only erc erc_create(void) {\n"
                              "  ensures result = empty;\n"
                              "}\n");
  // The brace block collapses to ';' so the signature is a declaration.
  EXPECT_NE(Out.find("/*@only@*/ erc erc_create(void) ;"),
            std::string::npos)
      << Out;
}

TEST(LclReaderTest, LineStructurePreserved) {
  std::string In = "imports x;\nint f(void);\nonly char *g(void);\n";
  std::string Out = translate(In);
  unsigned InLines = 0, OutLines = 0;
  for (char C : In)
    if (C == '\n')
      ++InLines;
  for (char C : Out)
    if (C == '\n')
      ++OutLines;
  EXPECT_EQ(InLines, OutLines);
}

TEST(LclReaderTest, WordPrefixesNotConverted) {
  // "outer" contains "out" but is not an annotation word.
  std::string Out = translate("int outer(int nullify);");
  EXPECT_NE(Out.find("int outer(int nullify);"), std::string::npos) << Out;
}

TEST(LclReaderTest, SpecDrivesCheckingOfImplementation) {
  // The paper's workflow: annotations in the .lcl spec are checked against
  // the C implementation.
  VFS Files;
  Files.add("mk.lcl", "only char *mk(void);\n");
  Files.add("mk.c", "char *mk(void) {\n"
                    "  char *p = (char *) malloc(4);\n"
                    "  if (p == NULL) { exit(1); }\n"
                    "  p[0] = '\\0';\n"
                    "  return p;\n"
                    "}\n");
  CheckResult WithSpec = Checker::checkFiles(Files, {"mk.lcl", "mk.c"});
  EXPECT_EQ(WithSpec.anomalyCount(), 0u) << WithSpec.render();

  // Without the spec, returning fresh storage as an unannotated result is
  // a suspected leak.
  CheckResult WithoutSpec = Checker::checkFiles(Files, {"mk.c"});
  EXPECT_EQ(WithoutSpec.count(CheckId::MustFree), 1u);
}

TEST(LclReaderTest, SpecViolationDetected) {
  VFS Files;
  Files.add("f.lcl", "void consume(only char *p);\n");
  Files.add("f.c", "void consume(char *p) { }\n");
  CheckResult R = Checker::checkFiles(Files, {"f.lcl", "f.c"});
  EXPECT_EQ(R.count(CheckId::MustFree), 1u) << R.render();
  EXPECT_TRUE(R.contains("Only storage p not released"));
}

} // namespace

//===--- the spec-mode employee database ---------------------------------------===//

#include "corpus/Corpus.h"

namespace {

TEST(LclReaderTest, SpecModeDatabaseChecksClean) {
  // The paper's program shape: "1000 lines of source code and 300 lines of
  // interface specifications". The same contracts expressed in .lcl give
  // the same clean result as the annotated headers.
  corpus::Program P = corpus::employeeDbSpecMode();
  CheckResult R = Checker::checkFiles(P.Files, P.MainFiles);
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
  EXPECT_GT(R.SuppressedCount, 0u);
}

TEST(LclReaderTest, SpecModeHasRealSpecVolume) {
  corpus::Program P = corpus::employeeDbSpecMode();
  unsigned SpecLines = 0;
  for (const std::string &Name : P.Files.names()) {
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".lcl") == 0) {
      std::optional<std::string> Text = P.Files.read(Name);
      for (char C : *Text)
        if (C == '\n')
          ++SpecLines;
    }
  }
  EXPECT_GE(SpecLines, 120u); // paper: ~300 lines of LCL
}

TEST(LclReaderTest, ImplementationsAloneAreNotClean) {
  // Without the specifications the implementations lose their interface
  // contracts and anomalies appear (missing only annotations, etc.).
  corpus::Program P = corpus::employeeDbSpecMode();
  std::vector<std::string> ImplsOnly;
  for (const std::string &Name : P.MainFiles)
    if (Name.size() <= 4 || Name.compare(Name.size() - 4, 4, ".lcl") != 0)
      ImplsOnly.push_back(Name);
  CheckResult R = Checker::checkFiles(P.Files, ImplsOnly);
  EXPECT_GT(R.anomalyCount(), 0u);
}

} // namespace
