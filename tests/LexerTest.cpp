//===--- LexerTest.cpp - Lexer unit tests -------------------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "lex/Lexer.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

std::vector<Token> lex(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L("test.c", Source, Diags);
  return L.lex();
}

TEST(LexerTest, EmptyInputYieldsEof) {
  std::vector<Token> Toks = lex("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].isEof());
}

TEST(LexerTest, Identifiers) {
  std::vector<Token> Toks = lex("foo _bar baz123");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Text, "_bar");
  EXPECT_EQ(Toks[2].Text, "baz123");
}

TEST(LexerTest, Keywords) {
  std::vector<Token> Toks = lex("int while typedef struct");
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Toks[1].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Toks[2].Kind, TokenKind::KwTypedef);
  EXPECT_EQ(Toks[3].Kind, TokenKind::KwStruct);
}

TEST(LexerTest, IntegerLiterals) {
  std::vector<Token> Toks = lex("0 42 0x1F 077 10L 3u");
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(Toks[I].Kind, TokenKind::IntegerLiteral) << I;
  EXPECT_EQ(Toks[2].Text, "0x1F");
}

TEST(LexerTest, FloatLiterals) {
  std::vector<Token> Toks = lex("1.5 2.0e3 1e-2");
  EXPECT_EQ(Toks[0].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Toks[1].Kind, TokenKind::FloatLiteral);
  EXPECT_EQ(Toks[2].Kind, TokenKind::FloatLiteral);
}

TEST(LexerTest, StringAndCharLiterals) {
  std::vector<Token> Toks = lex(R"("hello" 'a' '\n' "with \"esc\"")");
  EXPECT_EQ(Toks[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Toks[0].Text, "hello");
  EXPECT_EQ(Toks[1].Kind, TokenKind::CharLiteral);
  EXPECT_EQ(Toks[1].Text, "a");
  EXPECT_EQ(Toks[2].Kind, TokenKind::CharLiteral);
  EXPECT_EQ(Toks[3].Kind, TokenKind::StringLiteral);
}

TEST(LexerTest, Punctuation) {
  std::vector<Token> Toks = lex("-> ++ -- << >> <= >= == != && || <<= >>=");
  TokenKind Expected[] = {
      TokenKind::Arrow,        TokenKind::PlusPlus,
      TokenKind::MinusMinus,   TokenKind::LessLess,
      TokenKind::GreaterGreater, TokenKind::LessEqual,
      TokenKind::GreaterEqual, TokenKind::EqualEqual,
      TokenKind::ExclaimEqual, TokenKind::AmpAmp,
      TokenKind::PipePipe,     TokenKind::LessLessEqual,
      TokenKind::GreaterGreaterEqual,
  };
  for (size_t I = 0; I < sizeof(Expected) / sizeof(Expected[0]); ++I)
    EXPECT_EQ(Toks[I].Kind, Expected[I]) << I;
}

TEST(LexerTest, LineAndBlockComments) {
  std::vector<Token> Toks = lex("a // comment\nb /* block\n comment */ c");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[2].Text, "c");
}

TEST(LexerTest, AnnotationComment) {
  std::vector<Token> Toks = lex("/*@null@*/ char *p;");
  ASSERT_GE(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Annotation);
  EXPECT_EQ(Toks[0].Text, "null");
  EXPECT_EQ(Toks[1].Kind, TokenKind::KwChar);
}

TEST(LexerTest, MultiWordAnnotationComment) {
  // "null out only void *malloc" style: one comment, three annotations.
  std::vector<Token> Toks = lex("/*@null out only@*/ void *p;");
  EXPECT_EQ(Toks[0].Text, "null");
  EXPECT_EQ(Toks[1].Text, "out");
  EXPECT_EQ(Toks[2].Text, "only");
  EXPECT_EQ(Toks[0].Kind, TokenKind::Annotation);
  EXPECT_EQ(Toks[2].Kind, TokenKind::Annotation);
}

TEST(LexerTest, ControlComments) {
  std::vector<Token> Toks = lex("/*@-mustfree@*/ x /*@=mustfree@*/ "
                                "/*@ignore@*/ y /*@end@*/");
  EXPECT_EQ(Toks[0].Kind, TokenKind::ControlComment);
  EXPECT_EQ(Toks[0].Text, "-mustfree");
  EXPECT_EQ(Toks[2].Kind, TokenKind::ControlComment);
  EXPECT_EQ(Toks[2].Text, "=mustfree");
  EXPECT_EQ(Toks[3].Text, "ignore");
  EXPECT_EQ(Toks[5].Text, "end");
}

TEST(LexerTest, UnknownAnnotationWordReported) {
  DiagnosticEngine Diags;
  Lexer L("test.c", "/*@bogus@*/ int x;", Diags);
  L.lex();
  EXPECT_EQ(Diags.count(CheckId::AnnotationError), 1u);
}

TEST(LexerTest, SourceLocations) {
  std::vector<Token> Toks = lex("a\n  b");
  EXPECT_EQ(Toks[0].Loc.line(), 1u);
  EXPECT_EQ(Toks[0].Loc.column(), 1u);
  EXPECT_EQ(Toks[1].Loc.line(), 2u);
  EXPECT_EQ(Toks[1].Loc.column(), 3u);
}

TEST(LexerTest, StartOfLineFlag) {
  std::vector<Token> Toks = lex("# define X\ny");
  EXPECT_TRUE(Toks[0].StartOfLine);  // '#'
  EXPECT_FALSE(Toks[1].StartOfLine); // 'define'
  EXPECT_TRUE(Toks[3].StartOfLine);  // 'y'
}

TEST(LexerTest, AdjacentStringsSeparateTokens) {
  std::vector<Token> Toks = lex(R"("a" "b")");
  EXPECT_EQ(Toks[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Toks[1].Kind, TokenKind::StringLiteral);
}

TEST(LexerTest, UnterminatedCommentReported) {
  DiagnosticEngine Diags;
  Lexer L("test.c", "a /* never closed", Diags);
  L.lex();
  EXPECT_FALSE(Diags.empty());
}

TEST(LexerTest, UnexpectedCharacterRecovered) {
  DiagnosticEngine Diags;
  Lexer L("test.c", "a $ b", Diags);
  std::vector<Token> Toks = L.lex();
  EXPECT_FALSE(Diags.empty());
  ASSERT_EQ(Toks.size(), 3u); // a, b, eof
  EXPECT_EQ(Toks[1].Text, "b");
}

// Parameterized sweep: every annotation word from Appendix B lexes as a
// single Annotation token.
class AnnotationWordTest : public ::testing::TestWithParam<const char *> {};

TEST_P(AnnotationWordTest, LexesAsAnnotation) {
  std::string Source = std::string("/*@") + GetParam() + "@*/";
  std::vector<Token> Toks = lex(Source);
  ASSERT_EQ(Toks.size(), 2u) << GetParam();
  EXPECT_EQ(Toks[0].Kind, TokenKind::Annotation);
  EXPECT_EQ(Toks[0].Text, GetParam());
  EXPECT_TRUE(Lexer::isAnnotationWord(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AppendixB, AnnotationWordTest,
    ::testing::Values("null", "notnull", "relnull", "out", "in", "partial",
                      "reldef", "only", "keep", "temp", "owned", "dependent",
                      "shared", "unique", "returned", "observer", "exposed",
                      "truenull", "falsenull", "undef", "exits"));

} // namespace
