//===--- LimitsTest.cpp - Resource budgets and fault containment ---------------===//
//
// Part of memlint. See DESIGN.md.
//
// The containment layer's contract: exceeding a budget degrades the run
// (partial results, one notice naming the limit, CheckStatus::Degraded)
// and contained internal errors surface as CheckStatus::InternalError —
// never a crash, never silently-lost diagnostics.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "support/Limits.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace memlint;

namespace {

unsigned countContaining(const CheckResult &R, const std::string &Needle) {
  unsigned N = 0;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Message.find(Needle) != std::string::npos)
      ++N;
  return N;
}

bool hasReason(const CheckResult &R, const std::string &Reason) {
  for (const std::string &S : R.DegradationReasons)
    if (S == Reason)
      return true;
  return false;
}

//===--- nesting depth --------------------------------------------------------===//

TEST(LimitsTest, TenThousandNestedParensDegradeWithoutOverflow) {
  std::string Source = "int f(int a) { return ";
  for (int I = 0; I < 10000; ++I)
    Source += "(";
  Source += "a";
  for (int I = 0; I < 10000; ++I)
    Source += ")";
  Source += "; }";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "deep.c");
  EXPECT_TRUE(R.contains("nesting too deep")) << R.render();
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  EXPECT_TRUE(hasReason(R, "limitnesting"));
}

TEST(LimitsTest, TenThousandNestedBlocksDegradeWithoutOverflow) {
  std::string Source = "void f(void) { ";
  for (int I = 0; I < 10000; ++I)
    Source += "{ ";
  Source += "; ";
  for (int I = 0; I < 10000; ++I)
    Source += "} ";
  Source += "}";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "deep.c");
  EXPECT_TRUE(R.contains("nesting too deep")) << R.render();
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  EXPECT_TRUE(hasReason(R, "limitnesting"));
}

TEST(LimitsTest, ShallowNestingStaysOk) {
  std::string Source = "int f(int a) { return ((((a)))); }";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "ok.c");
  EXPECT_EQ(R.Status, CheckStatus::Ok) << R.render();
  EXPECT_TRUE(R.DegradationReasons.empty());
}

//===--- statement budget -----------------------------------------------------===//

TEST(LimitsTest, StatementBudgetReportsExactlyOnce) {
  CheckOptions Options;
  Options.Flags.limits().MaxStmtsPerFunction = 5;
  std::string Source = "void f(void) {\n  int x;\n  x = 0;\n";
  for (int I = 0; I < 40; ++I)
    Source += "  x = x + 1;\n";
  Source += "}\n";
  CheckResult R = Checker::checkSource(Source, Options, "stmts.c");
  EXPECT_EQ(countContaining(R, "statement budget exceeded"), 1u)
      << R.render();
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  EXPECT_TRUE(hasReason(R, "limitstmts"));
}

TEST(LimitsTest, StatementBudgetIsPerFunction) {
  CheckOptions Options;
  Options.Flags.limits().MaxStmtsPerFunction = 100;
  // Two small functions together exceed 100 statements but individually do
  // not; per-function accounting stays within budget.
  std::string Source;
  for (int F = 0; F < 2; ++F) {
    Source += "void f" + std::to_string(F) + "(void) {\n  int x;\n  x = 0;\n";
    for (int I = 0; I < 70; ++I)
      Source += "  x = x + 1;\n";
    Source += "}\n";
  }
  CheckResult R = Checker::checkSource(Source, Options, "two.c");
  EXPECT_EQ(R.Status, CheckStatus::Ok) << R.render();
}

//===--- environment splits ---------------------------------------------------===//

TEST(LimitsTest, EnvSplitBudgetDegrades) {
  CheckOptions Options;
  Options.Flags.limits().MaxEnvSplitsPerFunction = 4;
  std::string Source = "void f(int a) {\n  int x;\n  x = 0;\n";
  for (int I = 0; I < 10; ++I)
    Source += "  if (a) { x = 1; } else { x = 2; }\n";
  Source += "}\n";
  CheckResult R = Checker::checkSource(Source, Options, "splits.c");
  EXPECT_EQ(countContaining(R, "environment split budget exceeded"), 1u)
      << R.render();
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  EXPECT_TRUE(hasReason(R, "limitsplits"));
}

//===--- alias-expansion depth ------------------------------------------------===//

TEST(LimitsTest, RefDepthLimitKeepsCheckingStable) {
  // -limitrefdepth bounds how deep alias-expansion rewrites may reach in
  // the environment (Env::expansions). A tight limit must degrade
  // precision only — checking still completes cleanly on aliased
  // struct-pointer chains, with no degradation notice (the limit prunes
  // rewrites silently, matching the old hard-coded depth cap).
  std::string Source = "typedef struct node { struct node *next; int v; } "
                       "node;\n"
                       "void touch(node *a) {\n"
                       "  node *b;\n"
                       "  b = a;\n"
                       "  if (b->next) { b->next->v = 1; }\n"
                       "}\n";
  for (unsigned Depth : {1u, 6u, 0u}) {
    CheckOptions Options;
    Options.Flags.limits().MaxRefAliasDepth = Depth;
    CheckResult R = Checker::checkSource(Source, Options, "depth.c");
    EXPECT_EQ(R.Status, CheckStatus::Ok) << "depth=" << Depth << "\n"
                                         << R.render();
    EXPECT_EQ(R.anomalyCount(), 0u) << "depth=" << Depth << "\n"
                                    << R.render();
  }
}

//===--- token budget ---------------------------------------------------------===//

TEST(LimitsTest, TokenBudgetTruncatesWithNotice) {
  CheckOptions Options;
  Options.IncludePrelude = false;
  Options.Flags.limits().MaxTokens = 25;
  std::string Source;
  for (int I = 0; I < 40; ++I)
    Source += "int g" + std::to_string(I) + ";\n";
  CheckResult R = Checker::checkSource(Source, Options, "big.c");
  EXPECT_TRUE(R.contains("token budget exceeded")) << R.render();
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  EXPECT_TRUE(hasReason(R, "limittokens"));
}

//===--- diagnostic flood control ---------------------------------------------===//

TEST(LimitsTest, FloodControlEmitsOneSummaryPerCappedClass) {
  CheckOptions Options;
  Options.Flags.limits().MaxDiagsPerClass = 3;
  // Eight distinct possibly-null dereferences, all the same check class.
  std::string Source;
  for (int I = 0; I < 8; ++I)
    Source += "void f" + std::to_string(I) +
              "(/*@null@*/ char *p) { *p = 'x'; }\n";
  CheckResult R = Checker::checkSource(Source, Options, "flood.c");

  // The first three are kept; the other five collapse into one summary.
  unsigned Stored = 0;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Id == CheckId::NullDeref && D.Sev == Severity::Anomaly)
      ++Stored;
  EXPECT_EQ(Stored, 3u) << R.render();
  EXPECT_EQ(countContaining(R, "further 5 messages of check class "
                               "'nullderef' suppressed"),
            1u)
      << R.render();
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  EXPECT_TRUE(hasReason(R, "limitclassdiags"));
}

TEST(LimitsTest, FloodControlKeepsEarlierDiagnostics) {
  CheckOptions Options;
  Options.Flags.limits().MaxDiagsPerClass = 2;
  std::string Source;
  for (int I = 0; I < 6; ++I)
    Source += "void f" + std::to_string(I) +
              "(/*@null@*/ char *p) { *p = 'x'; }\n";
  CheckResult R = Checker::checkSource(Source, Options, "keep.c");
  // Storage order is emission order: the first two functions' anomalies
  // survive, never displaced by later ones.
  std::vector<unsigned> Lines;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Id == CheckId::NullDeref && D.Sev == Severity::Anomaly)
      Lines.push_back(D.Loc.line());
  ASSERT_EQ(Lines.size(), 2u) << R.render();
  EXPECT_EQ(Lines[0], 1u);
  EXPECT_EQ(Lines[1], 2u);
}

//===--- internal-error containment -------------------------------------------===//

TEST(LimitsTest, ContainedCrashKeepsOtherFilesResults) {
  VFS Files;
  Files.add("a.c", "#pragma memlint crash\n");
  Files.add("b.c", "void g(/*@null@*/ char *p) { *p = 'x'; }\n");
  CheckResult R = Checker::checkFiles(Files, {"a.c", "b.c"});
  EXPECT_EQ(R.Status, CheckStatus::InternalError) << R.render();
  EXPECT_TRUE(R.contains("internal error")) << R.render();
  EXPECT_TRUE(hasReason(R, "internal-error"));
  // Partial results: the healthy file is still fully checked.
  EXPECT_TRUE(R.contains("possibly null pointer p")) << R.render();
}

TEST(LimitsTest, ContainedCrashAloneStillReturnsResult) {
  CheckResult R = Checker::checkSource("#pragma memlint crash\n",
                                       CheckOptions(), "a.c");
  EXPECT_EQ(R.Status, CheckStatus::InternalError);
  EXPECT_TRUE(R.contains("internal error")) << R.render();
}

//===--- budget exhaustion keeps earlier diagnostics ---------------------------===//

TEST(LimitsTest, DegradedRunKeepsDiagnosticsEmittedBeforeCutoff) {
  CheckOptions Options;
  Options.Flags.limits().MaxStmtsPerFunction = 5;
  std::string Source = "void early(/*@null@*/ char *p) { *p = 'x'; }\n"
                       "void big(void) {\n  int x;\n  x = 0;\n";
  for (int I = 0; I < 40; ++I)
    Source += "  x = x + 1;\n";
  Source += "}\n";
  CheckResult R = Checker::checkSource(Source, Options, "partial.c");
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  // The anomaly found before the budget ran out is retained.
  EXPECT_TRUE(R.contains("possibly null pointer p")) << R.render();
}

//===--- flag registry round-trip ----------------------------------------------===//

TEST(LimitsTest, StringApiEqualsStructApi) {
  FlagSet ByString;
  ASSERT_TRUE(ByString.parse("-limitstmts=7"));
  ASSERT_TRUE(ByString.parse("-limittokens=123"));
  FlagSet ByStruct;
  ByStruct.limits().MaxStmtsPerFunction = 7;
  ByStruct.limits().MaxTokens = 123;
  EXPECT_TRUE(ByString.limits() == ByStruct.limits());
}

TEST(LimitsTest, StringApiAndStructApiCheckIdentically) {
  std::string Source = "void f(void) {\n  int x;\n  x = 0;\n";
  for (int I = 0; I < 40; ++I)
    Source += "  x = x + 1;\n";
  Source += "}\n";

  CheckOptions ByString;
  ASSERT_TRUE(ByString.Flags.parse("-limitstmts=5"));
  CheckOptions ByStruct;
  ByStruct.Flags.limits().MaxStmtsPerFunction = 5;

  CheckResult A = Checker::checkSource(Source, ByString, "s.c");
  CheckResult B = Checker::checkSource(Source, ByStruct, "s.c");
  EXPECT_EQ(A.render(), B.render());
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.DegradationReasons, B.DegradationReasons);
}

TEST(LimitsTest, EveryLimitSpecIsARegisteredFlag) {
  FlagSet F;
  std::vector<std::string> Known = F.knownFlags();
  for (const LimitSpec &Spec : limitSpecs()) {
    EXPECT_TRUE(F.isKnown(Spec.Name)) << Spec.Name;
    EXPECT_NE(std::find(Known.begin(), Known.end(), Spec.Name), Known.end())
        << Spec.Name;
    // Round trip: set through the string API, read through both APIs.
    ASSERT_TRUE(F.parse("-" + std::string(Spec.Name) + "=42")) << Spec.Name;
    EXPECT_EQ(F.getLimit(Spec.Name), 42u) << Spec.Name;
    EXPECT_EQ(F.limits().*(Spec.Field), 42u) << Spec.Name;
  }
}

TEST(LimitsTest, ZeroMeansUnlimited) {
  CheckOptions Options;
  Options.Flags.limits().MaxStmtsPerFunction = 0;
  std::string Source = "void f(void) {\n  int x;\n  x = 0;\n";
  for (int I = 0; I < 200; ++I)
    Source += "  x = x + 1;\n";
  Source += "}\n";
  CheckResult R = Checker::checkSource(Source, Options, "unlim.c");
  EXPECT_EQ(R.Status, CheckStatus::Ok) << R.render();
}

} // namespace
