//===--- MessageGoldenTest.cpp - Exact diagnostic-text regression net ----------===//
//
// Part of memlint. See DESIGN.md.
//
// Pins the full text (message + primary location + notes) of one
// representative anomaly per check class, so message regressions are caught
// exactly. Texts follow the paper's style: a one-line anomaly at its
// detection point with indented provenance notes.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

struct GoldenCase {
  const char *Name;
  const char *Source;
  const char *Expected; // full rendered diagnostic (first diagnostic)
};

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, ExactRendering) {
  const GoldenCase &C = GetParam();
  CheckResult R = Checker::checkSource(C.Source, CheckOptions(), "g.c");
  ASSERT_FALSE(R.Diagnostics.empty()) << C.Name;
  EXPECT_EQ(R.Diagnostics[0].str(), C.Expected) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, GoldenTest,
    ::testing::Values(
        GoldenCase{
            "null_deref",
            "int f(/*@null@*/ int *p) { return *p; }",
            "g.c:1: Dereference access from possibly null pointer p: *p\n"
            "   g.c:1: Storage p may become null"},
        GoldenCase{
            "arrow_deref",
            "struct s { int v; };\n"
            "int f(/*@null@*/ struct s *p) { return p->v; }",
            "g.c:2: Arrow access from possibly null pointer p: p->v\n"
            "   g.c:2: Storage p may become null"},
        GoldenCase{
            "null_pass",
            "extern void use(int *q);\n"
            "void f(/*@null@*/ int *p) { use(p); }",
            "g.c:2: Possibly null storage p passed as non-null param 1 of "
            "use: use(p)\n"
            "   g.c:2: Storage p may become null"},
        GoldenCase{
            "null_return",
            "int *f(/*@null@*/ /*@returned@*/ int *p) { return p; }",
            "g.c:1: Possibly null storage returned as non-null: return p\n"
            "   g.c:1: Storage p may become null"},
        GoldenCase{
            "use_before_def",
            "int f(void) { int x; return x; }",
            "g.c:1: Storage x used before definition: x\n"
            "   g.c:1: Storage x allocated here"},
        GoldenCase{
            "leak_at_return",
            "void f(void) {\n"
            "  char *p = (char *) malloc(4);\n"
            "  if (p == NULL) { return; }\n"
            "  p[0] = 'x';\n"
            "}",
            "g.c:5: Fresh storage p not released before scope exit "
            "(memory leak)\n"
            "   g.c:2: Storage p allocated"},
        GoldenCase{
            "only_param_leak",
            "void f(/*@only@*/ char *p) { }",
            "g.c:1: Only storage p not released before return\n"
            "   g.c:1: Storage p becomes only"},
        GoldenCase{
            "implicitly_temp_free",
            "void f(char *c) { free((void *) c); }",
            "g.c:1: Implicitly temp storage c passed as only param: "
            "free((void *) c)\n"
            "   g.c:1: Storage c becomes temp"},
        GoldenCase{
            "use_released",
            "int f(/*@only@*/ int *p) {\n"
            "  free((void *) p);\n"
            "  return *p;\n"
            "}",
            "g.c:3: Dead storage p used: p\n"
            "   g.c:2: Storage p released"},
        GoldenCase{
            "branch_state",
            "void f(int c, /*@only@*/ char *e) {\n"
            "  extern /*@only@*/ char *g;\n"
            "  if (c) { g = e; }\n"
            "}",
            "g.c:3: Storage e is kept on one branch, only on the other "
            "(inconsistent obligations at branch merge)\n"
            "   g.c:1: Storage e becomes kept"},
        GoldenCase{
            "global_released",
            "extern /*@only@*/ char *g;\n"
            "void f(void) {\n"
            "  free((void *) g);\n"
            "}",
            "g.c:4: Function returns with global g referencing released "
            "storage\n"
            "   g.c:3: Storage g released"}));

// The note locations are load-bearing: every golden case's note points at
// the provenance line, not the report line, unless they coincide.
TEST(GoldenNotesTest, ProvenanceDistinctFromReport) {
  CheckResult R = Checker::checkSource("void f(void) {\n"
                                       "  char *p = (char *) malloc(4);\n"
                                       "  if (p == NULL) { return; }\n"
                                       "  p[0] = 'x';\n"
                                       "}",
                                       CheckOptions(), "g.c");
  ASSERT_EQ(R.Diagnostics.size(), 1u);
  ASSERT_EQ(R.Diagnostics[0].Notes.size(), 1u);
  EXPECT_NE(R.Diagnostics[0].Loc.line(),
            R.Diagnostics[0].Notes[0].Loc.line());
}

} // namespace
