//===--- ObservabilityTest.cpp - Metrics, findings output, tracing --------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability layer: the metrics registry wired through
/// the pipeline, SARIF/JSONL findings emitters, the analysis trace, and
/// journal persistence of per-file metrics. Counters must be deterministic
/// (same input, same flags, same counts — across runs and job counts);
/// timers are wall clock and only their key set is asserted.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"
#include "support/FindingsOutput.h"
#include "support/Journal.h"
#include "support/Metrics.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace memlint;
using namespace memlint::test;

namespace {

/// The running example used throughout: a leak and a possible null deref,
/// so every phase has work to do and diagnostics exist to render.
const char *LeakySource = "extern /*@null@*/ /*@only@*/ void *malloc(int n);\n"
                          "void leak(void) {\n"
                          "  char *p = (char *) malloc(10);\n"
                          "  *p = 'x';\n"
                          "}\n";

CheckResult checkWithMetrics(const std::string &Source,
                             bool Stats = false) {
  CheckOptions Options;
  Options.CollectMetrics = true;
  if (Stats)
    Options.Flags.set("stats", true);
  return Checker::checkSource(Source, Options, "test.c");
}

unsigned long long counter(const MetricsSnapshot &M, const std::string &K) {
  auto It = M.Counters.find(K);
  return It == M.Counters.end() ? 0ull : It->second;
}

//===----------------------------------------------------------------------===//
// Metrics collection
//===----------------------------------------------------------------------===//

TEST(MetricsTest, OffByDefault) {
  CheckResult R = check(LeakySource);
  EXPECT_TRUE(R.Metrics.empty());
  EXPECT_TRUE(R.Metrics.Counters.empty());
  EXPECT_TRUE(R.Metrics.TimersMs.empty());
}

TEST(MetricsTest, PhaseTimersAndCountersCollected) {
  CheckResult R = checkWithMetrics(LeakySource);
  ASSERT_FALSE(R.Metrics.empty());
  for (const char *Phase : {"phase.lex", "phase.pp", "phase.parse",
                            "phase.sema", "phase.check", "check.function"})
    EXPECT_TRUE(R.Metrics.TimersMs.count(Phase)) << Phase;
  EXPECT_EQ(counter(R.Metrics, "check.functions"), 1u);
  EXPECT_GT(counter(R.Metrics, "check.stmts"), 0u);
  EXPECT_GT(counter(R.Metrics, "lex.tokens"), 0u);
  EXPECT_GT(counter(R.Metrics, "pp.tokens"), 0u);
  EXPECT_GT(counter(R.Metrics, "budget.tokens"), 0u);
  EXPECT_EQ(counter(R.Metrics, "diags.stored"), R.Diagnostics.size());
}

TEST(MetricsTest, CountersDeterministicAcrossRuns) {
  CheckResult A = checkWithMetrics(LeakySource);
  CheckResult B = checkWithMetrics(LeakySource);
  EXPECT_EQ(A.Metrics.Counters, B.Metrics.Counters);
  // Timer *keys* are deterministic even though values are wall clock.
  ASSERT_EQ(A.Metrics.TimersMs.size(), B.Metrics.TimersMs.size());
  auto It = B.Metrics.TimersMs.begin();
  for (const auto &KV : A.Metrics.TimersMs)
    EXPECT_EQ(KV.first, (It++)->first);
}

TEST(MetricsTest, EnvStatsFoldedOnlyUnderStatsFlag) {
  CheckResult Plain = checkWithMetrics(LeakySource, /*Stats=*/false);
  for (const auto &KV : Plain.Metrics.Counters)
    EXPECT_NE(KV.first.rfind("env.", 0), 0u)
        << "unexpected env counter without +stats: " << KV.first;

  CheckResult Stats = checkWithMetrics(LeakySource, /*Stats=*/true);
  EXPECT_TRUE(Stats.Metrics.Counters.count("env.writes"));
  EXPECT_TRUE(Stats.Metrics.Counters.count("env.lookups"));
}

TEST(MetricsTest, SnapshotMergeAndJson) {
  MetricsSnapshot A, B;
  A.Counters["x"] = 2;
  A.TimersMs["t"] = 1.25;
  B.Counters["x"] = 3;
  B.Counters["y"] = 1;
  B.TimersMs["t"] = 0.25;
  A.merge(B);
  EXPECT_EQ(A.Counters["x"], 5u);
  EXPECT_EQ(A.Counters["y"], 1u);
  EXPECT_DOUBLE_EQ(A.TimersMs["t"], 1.5);

  std::string J = A.json();
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"timers_ms\""), std::string::npos);
  EXPECT_NE(J.find("\"x\": 5"), std::string::npos);
}

TEST(MetricsTest, ScopedTimerInertWithoutRegistry) {
  // Must not crash or record anywhere; the disabled path is a no-op.
  { ScopedTimer T(nullptr, "phase.test"); }
  MetricsRegistry Reg;
  { ScopedTimer T(&Reg, "phase.test"); }
  EXPECT_TRUE(Reg.snapshot().TimersMs.count("phase.test"));
}

//===----------------------------------------------------------------------===//
// SARIF output
//===----------------------------------------------------------------------===//

TEST(SarifTest, MinimalDocumentShape) {
  CheckResult R = check(LeakySource);
  ASSERT_FALSE(R.Diagnostics.empty());
  std::string S = renderSarif(R.Diagnostics);

  EXPECT_NE(S.find("\"$schema\""), std::string::npos);
  EXPECT_NE(S.find("sarif-2.1.0"), std::string::npos);
  EXPECT_NE(S.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(S.find("\"name\": \"memlint\""), std::string::npos);
  // Rules are emitted for the classes that fired, and results refer to
  // them by stable flag name.
  EXPECT_NE(S.find("\"id\": \"mustfree\""), std::string::npos);
  EXPECT_NE(S.find("\"ruleId\": \"mustfree\""), std::string::npos);
  EXPECT_NE(S.find("\"uri\": \"test.c\""), std::string::npos);
  // Anomalies map to SARIF "warning".
  EXPECT_NE(S.find("\"level\": \"warning\""), std::string::npos);
  // Document ends with a newline and is brace-balanced.
  ASSERT_FALSE(S.empty());
  EXPECT_EQ(S.back(), '\n');
  long Depth = 0;
  for (char C : S)
    Depth += C == '{' ? 1 : C == '}' ? -1 : 0;
  EXPECT_EQ(Depth, 0);
}

TEST(SarifTest, EmptyDiagnosticsStillValidDocument) {
  std::string S = renderSarif({});
  EXPECT_NE(S.find("\"results\": []"), std::string::npos);
  EXPECT_NE(S.find("\"rules\": []"), std::string::npos);
  EXPECT_EQ(S.find("\"ruleId\""), std::string::npos);
}

TEST(SarifTest, NotesBecomeRelatedLocationsAndEscaping) {
  Diagnostic D;
  D.Id = CheckId::NullDeref;
  D.Sev = Severity::Anomaly;
  D.Loc = SourceLocation("a \"b\"\\c.c", 3, 7);
  D.Message = "deref of \"p\"\\here";
  D.Notes.push_back({SourceLocation("a \"b\"\\c.c", 2, 1),
                     "Storage p may become null"});
  std::string S = renderSarif({D});

  EXPECT_NE(S.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(S.find("Storage p may become null"), std::string::npos);
  // Quotes and backslashes in file names and messages are escaped.
  EXPECT_NE(S.find("a \\\"b\\\"\\\\c.c"), std::string::npos);
  EXPECT_NE(S.find("deref of \\\"p\\\"\\\\here"), std::string::npos);
  EXPECT_NE(S.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(S.find("\"startColumn\": 7"), std::string::npos);
}

TEST(SarifTest, InvalidLocationOmitsRegion) {
  Diagnostic D;
  D.Id = CheckId::ParseError;
  D.Sev = Severity::Error;
  D.Message = "driver-level trouble";
  std::string S = renderSarif({D});
  EXPECT_EQ(S.find("\"locations\""), std::string::npos);
  EXPECT_NE(S.find("\"level\": \"error\""), std::string::npos);
}

TEST(SarifTest, SeverityNames) {
  EXPECT_STREQ(severityName(Severity::Error), "error");
  EXPECT_STREQ(severityName(Severity::Anomaly), "anomaly");
  EXPECT_STREQ(severityName(Severity::Note), "note");
}

//===----------------------------------------------------------------------===//
// JSONL output
//===----------------------------------------------------------------------===//

TEST(JsonlTest, OneCompleteObjectPerLine) {
  CheckResult R = check(LeakySource);
  ASSERT_FALSE(R.Diagnostics.empty());
  std::string J = renderJsonl(R.Diagnostics);

  ASSERT_FALSE(J.empty());
  EXPECT_EQ(J.back(), '\n');
  size_t Lines = 0, Pos = 0;
  while (Pos < J.size()) {
    size_t End = J.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    std::string Line = J.substr(Pos, End - Pos);
    EXPECT_EQ(Line.front(), '{');
    EXPECT_EQ(Line.back(), '}');
    EXPECT_NE(Line.find("\"file\":\"test.c\""), std::string::npos);
    EXPECT_NE(Line.find("\"check\":"), std::string::npos);
    EXPECT_NE(Line.find("\"severity\":"), std::string::npos);
    EXPECT_NE(Line.find("\"message\":"), std::string::npos);
    ++Lines;
    Pos = End + 1;
  }
  EXPECT_EQ(Lines, R.Diagnostics.size());
}

TEST(JsonlTest, NotesAndSeverityRendered) {
  Diagnostic D;
  D.Id = CheckId::NullReturn;
  D.Sev = Severity::Anomaly;
  D.Loc = SourceLocation("f.c", 6, 0);
  D.Message = "returns null";
  D.Notes.push_back({SourceLocation("f.c", 5, 2), "may become null"});
  std::string J = renderJsonl({D});

  EXPECT_NE(J.find("\"check\":\"nullret\""), std::string::npos);
  EXPECT_NE(J.find("\"severity\":\"anomaly\""), std::string::npos);
  EXPECT_NE(J.find("\"line\":6"), std::string::npos);
  EXPECT_NE(J.find("\"notes\":[{"), std::string::npos);
  EXPECT_NE(J.find("may become null"), std::string::npos);
  // One diagnostic, one line.
  EXPECT_EQ(std::count(J.begin(), J.end(), '\n'), 1);
}

//===----------------------------------------------------------------------===//
// Analysis trace
//===----------------------------------------------------------------------===//

std::vector<std::string> traceOf(const std::string &Source,
                                 const std::string &Fn) {
  std::vector<std::string> Events;
  CheckOptions Options;
  Options.TraceFunction = Fn;
  Options.TraceSink = [&Events](const std::string &E) {
    Events.push_back(E);
  };
  Checker::checkSource(Source, Options, "test.c");
  return Events;
}

TEST(TraceTest, GoldenEventSequence) {
  // A branch over a possibly-null parameter: one split, two null-state
  // refinements, one strong write, one merge.
  const char *Source = "void f(/*@null@*/ char *p) {\n"
                       "  if (p) { *p = 'x'; }\n"
                       "}\n";
  std::vector<std::string> Events = traceOf(Source, "f");
  ASSERT_FALSE(Events.empty());

  // Every event names the traced function and an event kind.
  for (const std::string &E : Events) {
    EXPECT_EQ(E.rfind("fn=f ", 0), 0u) << E;
    EXPECT_NE(E.find(" ev="), std::string::npos) << E;
  }
  EXPECT_EQ(Events.front().rfind("fn=f ev=enter loc=test.c:1", 0), 0u)
      << Events.front();
  EXPECT_EQ(Events.back().rfind("fn=f ev=exit ", 0), 0u) << Events.back();

  auto CountOf = [&Events](const std::string &Needle) {
    size_t N = 0;
    for (const std::string &E : Events)
      if (E.find(Needle) != std::string::npos)
        ++N;
    return N;
  };
  EXPECT_EQ(CountOf("ev=split kind=if"), 1u);
  EXPECT_EQ(CountOf("ev=merge kind=if"), 1u);
  EXPECT_EQ(CountOf("ev=null ref=p"), 2u);
  EXPECT_EQ(CountOf("ev=write ref=*p"), 1u);
  // The trace is deterministic: a second run produces identical lines.
  EXPECT_EQ(Events, traceOf(Source, "f"));
}

TEST(TraceTest, OnlyNamedFunctionTraced) {
  const char *Source = "void a(char *p) { *p = 'x'; }\n"
                       "void b(char *q) { *q = 'y'; }\n";
  std::vector<std::string> Events = traceOf(Source, "b");
  ASSERT_FALSE(Events.empty());
  for (const std::string &E : Events)
    EXPECT_EQ(E.rfind("fn=b ", 0), 0u) << E;
  EXPECT_TRUE(traceOf(Source, "no_such_function").empty());
}

TEST(TraceTest, TraceDoesNotChangeDiagnostics) {
  CheckResult Plain = check(LeakySource);
  CheckOptions Options;
  Options.TraceFunction = "leak";
  Options.TraceSink = [](const std::string &) {};
  CheckResult Traced = Checker::checkSource(LeakySource, Options, "test.c");
  EXPECT_EQ(Plain.render(), Traced.render());
  EXPECT_EQ(Plain.Status, Traced.Status);
}

//===----------------------------------------------------------------------===//
// Batch metrics + journal round-trip
//===----------------------------------------------------------------------===//

/// Writes N synthetic files (a cycle of clean / leak / null-deref bodies)
/// into the VFS. Mirrors BatchDriverTest's corpus shape.
void buildMetricsCorpus(VFS &Files, std::vector<std::string> &Names,
                        unsigned N) {
  for (unsigned I = 0; I < N; ++I) {
    std::string Name = "m" + std::to_string(I) + ".c";
    std::string Src;
    switch (I % 3) {
    case 0:
      Src = "int ok" + std::to_string(I) + "(int x) { return x + 1; }\n";
      break;
    case 1:
      Src = "extern /*@only@*/ /*@null@*/ void *malloc(int n);\n"
            "void leak" + std::to_string(I) + "(void) {\n"
            "  char *p = (char *) malloc(8);\n"
            "  if (p) { *p = 'x'; }\n"
            "}\n";
      break;
    default:
      Src = "void nd" + std::to_string(I) +
            "(/*@null@*/ char *p) { *p = 'x'; }\n";
      break;
    }
    Files.add(Name, Src);
    Names.push_back(Name);
  }
}

BatchResult runBatchWithMetrics(unsigned Jobs, const std::string &Journal =
                                                   std::string()) {
  VFS Files;
  std::vector<std::string> Names;
  buildMetricsCorpus(Files, Names, 24);
  BatchOptions Options;
  Options.Jobs = Jobs;
  Options.CollectMetrics = true;
  Options.JournalPath = Journal;
  Options.Resume = !Journal.empty();
  return BatchDriver(Options).run(Files, Names);
}

TEST(BatchMetricsTest, CountersIdenticalAcrossJobCounts) {
  BatchResult R1 = runBatchWithMetrics(1);
  BatchResult R8 = runBatchWithMetrics(8);
  ASSERT_FALSE(R1.Metrics.Counters.empty());
  EXPECT_EQ(R1.Metrics.Counters, R8.Metrics.Counters);
  EXPECT_EQ(counter(R1.Metrics, "batch.files"), 24u);
  EXPECT_EQ(counter(R1.Metrics, "batch.ok") +
                counter(R1.Metrics, "batch.degraded"),
            24u);
  // Per-file fold really happened: the corpus defines one function per
  // file, and check.functions is the sum over all files.
  EXPECT_EQ(counter(R1.Metrics, "check.functions"), 24u);
}

TEST(BatchMetricsTest, OffByDefault) {
  VFS Files;
  std::vector<std::string> Names;
  buildMetricsCorpus(Files, Names, 3);
  BatchOptions Options;
  BatchResult R = BatchDriver(Options).run(Files, Names);
  EXPECT_TRUE(R.Metrics.empty());
  for (const FileOutcome &O : R.Outcomes)
    EXPECT_TRUE(O.Metrics.empty());
}

TEST(BatchMetricsTest, JournalEntryMetricsRoundTrip) {
  JournalEntry E;
  E.File = "m1.c";
  E.Status = "ok";
  E.Attempts = 1;
  E.Anomalies = 2;
  E.WallMs = 1.5;
  E.Diagnostics = "m1.c:3: leak\n";
  E.Metrics.Counters["check.functions"] = 1;
  E.Metrics.Counters["lex.tokens"] = 435;
  E.Metrics.TimersMs["phase.check"] = 1.25;

  std::string Text = journalHeaderLine("deadbeefdeadbeef", 1) + "\n" +
                     journalEntryLine(E) + "\n";
  JournalContents C = parseJournal(Text);
  ASSERT_TRUE(C.HeaderValid);
  EXPECT_EQ(C.CorruptLines, 0u);
  ASSERT_EQ(C.Entries.size(), 1u);
  EXPECT_EQ(C.Entries[0].Metrics.Counters, E.Metrics.Counters);
  EXPECT_EQ(C.Entries[0].Metrics.TimersMs, E.Metrics.TimersMs);
}

TEST(BatchMetricsTest, ResumedRunKeepsAggregateCounters) {
  std::string Journal =
      ::testing::TempDir() + "obs_metrics_journal.jsonl";
  std::remove(Journal.c_str());

  BatchResult First = runBatchWithMetrics(2, Journal);
  ASSERT_EQ(First.ResumedCount, 0u);
  BatchResult Second = runBatchWithMetrics(2, Journal);
  EXPECT_EQ(Second.ResumedCount, 24u);
  // Resumed outcomes carry their journaled metrics, so the aggregate
  // counter fold is complete even when nothing was re-checked.
  EXPECT_EQ(First.Metrics.Counters.count("check.functions"), 1u);
  auto FirstCounters = First.Metrics.Counters;
  auto SecondCounters = Second.Metrics.Counters;
  // batch.resumed legitimately differs; compare everything else.
  FirstCounters.erase("batch.resumed");
  SecondCounters.erase("batch.resumed");
  EXPECT_EQ(FirstCounters, SecondCounters);
  std::remove(Journal.c_str());
}

//===----------------------------------------------------------------------===//
// Flood control: notes are exempt
//===----------------------------------------------------------------------===//

TEST(FloodControlTest, NotesExemptFromCaps) {
  DiagnosticEngine Diags;
  Diags.setFloodControl(/*PerClass=*/2, /*Total=*/3);
  for (int I = 0; I < 5; ++I)
    Diags.report(CheckId::MustFree, SourceLocation("f.c", I + 1, 0),
                 "leak " + std::to_string(I));
  for (int I = 0; I < 4; ++I)
    Diags.report(CheckId::MustFree, SourceLocation("f.c", I + 1, 0),
                 "notice " + std::to_string(I), Severity::Note);

  // Anomalies hit the per-class cap of 2; every note is stored anyway.
  EXPECT_EQ(Diags.cappedStoredCount(), 2u);
  EXPECT_EQ(Diags.diagnostics().size(), 6u);
  unsigned Notes = 0;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Sev == Severity::Note)
      ++Notes;
  EXPECT_EQ(Notes, 4u);
  ASSERT_TRUE(Diags.overflowCounts().count(CheckId::MustFree));
  EXPECT_EQ(Diags.overflowCounts().at(CheckId::MustFree), 3u);
}

TEST(FloodControlTest, NotesDoNotConsumeTotalCap) {
  DiagnosticEngine Diags;
  Diags.setFloodControl(/*PerClass=*/0, /*Total=*/2);
  // Interleave notes with anomalies: the notes must not eat the total
  // budget ahead of real findings.
  for (int I = 0; I < 3; ++I) {
    Diags.report(CheckId::NullDeref, SourceLocation("f.c", I + 1, 0),
                 "note " + std::to_string(I), Severity::Note);
    Diags.report(CheckId::NullDeref, SourceLocation("f.c", I + 1, 0),
                 "deref " + std::to_string(I));
  }
  EXPECT_EQ(Diags.cappedStoredCount(), 2u);
  EXPECT_EQ(Diags.diagnostics().size(), 5u); // 3 notes + 2 anomalies
  EXPECT_EQ(Diags.overflowCounts().at(CheckId::NullDeref), 1u);
}

TEST(FloodControlTest, BudgetNoticeSurvivesCappedRun) {
  // End-to-end: a capped run still reports its budget notice (a Note)
  // even when the overall message cap is exhausted by real findings.
  std::string Source = "extern /*@only@*/ /*@null@*/ void *malloc(int n);\n";
  for (int I = 0; I < 12; ++I)
    Source += "void leak" + std::to_string(I) +
              "(void) { char *p = (char *) malloc(8); if (p) { *p = 'x'; } }\n";
  CheckOptions Options;
  Options.Flags.limits().MaxDiagsTotal = 3;
  Options.Flags.limits().MaxTokens = 120; // forces a budget degradation
  CheckResult R = Checker::checkSource(Source, Options, "test.c");
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  bool SawNote = false;
  for (const Diagnostic &D : R.Diagnostics)
    SawNote = SawNote || D.Sev == Severity::Note;
  EXPECT_TRUE(SawNote) << R.render();
}

} // namespace
