//===--- ObservabilityTest.cpp - Metrics, findings output, tracing --------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability layer: the metrics registry wired through
/// the pipeline, SARIF/JSONL findings emitters, the analysis trace, and
/// journal persistence of per-file metrics. Counters must be deterministic
/// (same input, same flags, same counts — across runs and job counts);
/// timers are wall clock and only their key set is asserted.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchDriver.h"
#include "service/CheckService.h"
#include "support/FindingsOutput.h"
#include "support/Journal.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace memlint;
using namespace memlint::test;

namespace {

/// The running example used throughout: a leak and a possible null deref,
/// so every phase has work to do and diagnostics exist to render.
const char *LeakySource = "extern /*@null@*/ /*@only@*/ void *malloc(int n);\n"
                          "void leak(void) {\n"
                          "  char *p = (char *) malloc(10);\n"
                          "  *p = 'x';\n"
                          "}\n";

CheckResult checkWithMetrics(const std::string &Source,
                             bool Stats = false) {
  CheckOptions Options;
  Options.CollectMetrics = true;
  if (Stats)
    Options.Flags.set("stats", true);
  return Checker::checkSource(Source, Options, "test.c");
}

unsigned long long counter(const MetricsSnapshot &M, const std::string &K) {
  auto It = M.Counters.find(K);
  return It == M.Counters.end() ? 0ull : It->second;
}

//===----------------------------------------------------------------------===//
// Metrics collection
//===----------------------------------------------------------------------===//

TEST(MetricsTest, OffByDefault) {
  CheckResult R = check(LeakySource);
  EXPECT_TRUE(R.Metrics.empty());
  EXPECT_TRUE(R.Metrics.Counters.empty());
  EXPECT_TRUE(R.Metrics.TimersMs.empty());
}

TEST(MetricsTest, PhaseTimersAndCountersCollected) {
  CheckResult R = checkWithMetrics(LeakySource);
  ASSERT_FALSE(R.Metrics.empty());
  for (const char *Phase : {"phase.lex", "phase.pp", "phase.parse",
                            "phase.sema", "phase.check", "check.function"})
    EXPECT_TRUE(R.Metrics.TimersMs.count(Phase)) << Phase;
  EXPECT_EQ(counter(R.Metrics, "check.functions"), 1u);
  EXPECT_GT(counter(R.Metrics, "check.stmts"), 0u);
  EXPECT_GT(counter(R.Metrics, "lex.tokens"), 0u);
  EXPECT_GT(counter(R.Metrics, "pp.tokens"), 0u);
  EXPECT_GT(counter(R.Metrics, "budget.tokens"), 0u);
  EXPECT_EQ(counter(R.Metrics, "diags.stored"), R.Diagnostics.size());
}

TEST(MetricsTest, CountersDeterministicAcrossRuns) {
  CheckResult A = checkWithMetrics(LeakySource);
  CheckResult B = checkWithMetrics(LeakySource);
  EXPECT_EQ(A.Metrics.Counters, B.Metrics.Counters);
  // Timer *keys* are deterministic even though values are wall clock.
  ASSERT_EQ(A.Metrics.TimersMs.size(), B.Metrics.TimersMs.size());
  auto It = B.Metrics.TimersMs.begin();
  for (const auto &KV : A.Metrics.TimersMs)
    EXPECT_EQ(KV.first, (It++)->first);
}

TEST(MetricsTest, EnvStatsFoldedOnlyUnderStatsFlag) {
  CheckResult Plain = checkWithMetrics(LeakySource, /*Stats=*/false);
  for (const auto &KV : Plain.Metrics.Counters)
    EXPECT_NE(KV.first.rfind("env.", 0), 0u)
        << "unexpected env counter without +stats: " << KV.first;

  CheckResult Stats = checkWithMetrics(LeakySource, /*Stats=*/true);
  EXPECT_TRUE(Stats.Metrics.Counters.count("env.writes"));
  EXPECT_TRUE(Stats.Metrics.Counters.count("env.lookups"));
}

TEST(MetricsTest, SnapshotMergeAndJson) {
  MetricsSnapshot A, B;
  A.Counters["x"] = 2;
  A.TimersMs["t"] = 1.25;
  B.Counters["x"] = 3;
  B.Counters["y"] = 1;
  B.TimersMs["t"] = 0.25;
  A.merge(B);
  EXPECT_EQ(A.Counters["x"], 5u);
  EXPECT_EQ(A.Counters["y"], 1u);
  EXPECT_DOUBLE_EQ(A.TimersMs["t"], 1.5);

  std::string J = A.json();
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"timers_ms\""), std::string::npos);
  EXPECT_NE(J.find("\"x\": 5"), std::string::npos);
}

TEST(MetricsTest, ScopedTimerInertWithoutRegistry) {
  // Must not crash or record anywhere; the disabled path is a no-op.
  { ScopedTimer T(nullptr, "phase.test"); }
  MetricsRegistry Reg;
  { ScopedTimer T(&Reg, "phase.test"); }
  EXPECT_TRUE(Reg.snapshot().TimersMs.count("phase.test"));
}

//===----------------------------------------------------------------------===//
// SARIF output
//===----------------------------------------------------------------------===//

TEST(SarifTest, MinimalDocumentShape) {
  CheckResult R = check(LeakySource);
  ASSERT_FALSE(R.Diagnostics.empty());
  std::string S = renderSarif(R.Diagnostics);

  EXPECT_NE(S.find("\"$schema\""), std::string::npos);
  EXPECT_NE(S.find("sarif-2.1.0"), std::string::npos);
  EXPECT_NE(S.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(S.find("\"name\": \"memlint\""), std::string::npos);
  // Rules are emitted for the classes that fired, and results refer to
  // them by stable flag name.
  EXPECT_NE(S.find("\"id\": \"mustfree\""), std::string::npos);
  EXPECT_NE(S.find("\"ruleId\": \"mustfree\""), std::string::npos);
  EXPECT_NE(S.find("\"uri\": \"test.c\""), std::string::npos);
  // Anomalies map to SARIF "warning".
  EXPECT_NE(S.find("\"level\": \"warning\""), std::string::npos);
  // Document ends with a newline and is brace-balanced.
  ASSERT_FALSE(S.empty());
  EXPECT_EQ(S.back(), '\n');
  long Depth = 0;
  for (char C : S)
    Depth += C == '{' ? 1 : C == '}' ? -1 : 0;
  EXPECT_EQ(Depth, 0);
}

TEST(SarifTest, EmptyDiagnosticsStillValidDocument) {
  std::string S = renderSarif({});
  EXPECT_NE(S.find("\"results\": []"), std::string::npos);
  EXPECT_NE(S.find("\"rules\": []"), std::string::npos);
  EXPECT_EQ(S.find("\"ruleId\""), std::string::npos);
}

TEST(SarifTest, NotesBecomeRelatedLocationsAndEscaping) {
  Diagnostic D;
  D.Id = CheckId::NullDeref;
  D.Sev = Severity::Anomaly;
  D.Loc = SourceLocation("a \"b\"\\c.c", 3, 7);
  D.Message = "deref of \"p\"\\here";
  D.Notes.push_back({SourceLocation("a \"b\"\\c.c", 2, 1),
                     "Storage p may become null"});
  std::string S = renderSarif({D});

  EXPECT_NE(S.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(S.find("Storage p may become null"), std::string::npos);
  // Quotes and backslashes in file names and messages are escaped.
  EXPECT_NE(S.find("a \\\"b\\\"\\\\c.c"), std::string::npos);
  EXPECT_NE(S.find("deref of \\\"p\\\"\\\\here"), std::string::npos);
  EXPECT_NE(S.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(S.find("\"startColumn\": 7"), std::string::npos);
}

TEST(SarifTest, InvalidLocationOmitsRegion) {
  Diagnostic D;
  D.Id = CheckId::ParseError;
  D.Sev = Severity::Error;
  D.Message = "driver-level trouble";
  std::string S = renderSarif({D});
  EXPECT_EQ(S.find("\"locations\""), std::string::npos);
  EXPECT_NE(S.find("\"level\": \"error\""), std::string::npos);
}

TEST(SarifTest, SeverityNames) {
  EXPECT_STREQ(severityName(Severity::Error), "error");
  EXPECT_STREQ(severityName(Severity::Anomaly), "anomaly");
  EXPECT_STREQ(severityName(Severity::Note), "note");
}

//===----------------------------------------------------------------------===//
// JSONL output
//===----------------------------------------------------------------------===//

TEST(JsonlTest, OneCompleteObjectPerLine) {
  CheckResult R = check(LeakySource);
  ASSERT_FALSE(R.Diagnostics.empty());
  std::string J = renderJsonl(R.Diagnostics);

  ASSERT_FALSE(J.empty());
  EXPECT_EQ(J.back(), '\n');
  size_t Lines = 0, Pos = 0;
  while (Pos < J.size()) {
    size_t End = J.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    std::string Line = J.substr(Pos, End - Pos);
    EXPECT_EQ(Line.front(), '{');
    EXPECT_EQ(Line.back(), '}');
    EXPECT_NE(Line.find("\"file\":\"test.c\""), std::string::npos);
    EXPECT_NE(Line.find("\"check\":"), std::string::npos);
    EXPECT_NE(Line.find("\"severity\":"), std::string::npos);
    EXPECT_NE(Line.find("\"message\":"), std::string::npos);
    ++Lines;
    Pos = End + 1;
  }
  EXPECT_EQ(Lines, R.Diagnostics.size());
}

TEST(JsonlTest, NotesAndSeverityRendered) {
  Diagnostic D;
  D.Id = CheckId::NullReturn;
  D.Sev = Severity::Anomaly;
  D.Loc = SourceLocation("f.c", 6, 0);
  D.Message = "returns null";
  D.Notes.push_back({SourceLocation("f.c", 5, 2), "may become null"});
  std::string J = renderJsonl({D});

  EXPECT_NE(J.find("\"check\":\"nullret\""), std::string::npos);
  EXPECT_NE(J.find("\"severity\":\"anomaly\""), std::string::npos);
  EXPECT_NE(J.find("\"line\":6"), std::string::npos);
  EXPECT_NE(J.find("\"notes\":[{"), std::string::npos);
  EXPECT_NE(J.find("may become null"), std::string::npos);
  // One diagnostic, one line.
  EXPECT_EQ(std::count(J.begin(), J.end(), '\n'), 1);
}

//===----------------------------------------------------------------------===//
// Analysis trace
//===----------------------------------------------------------------------===//

std::vector<std::string> traceOf(const std::string &Source,
                                 const std::string &Fn) {
  std::vector<std::string> Events;
  CheckOptions Options;
  Options.TraceFunction = Fn;
  Options.TraceSink = [&Events](const std::string &E) {
    Events.push_back(E);
  };
  Checker::checkSource(Source, Options, "test.c");
  return Events;
}

TEST(TraceTest, GoldenEventSequence) {
  // A branch over a possibly-null parameter: one split, two null-state
  // refinements, one strong write, one merge.
  const char *Source = "void f(/*@null@*/ char *p) {\n"
                       "  if (p) { *p = 'x'; }\n"
                       "}\n";
  std::vector<std::string> Events = traceOf(Source, "f");
  ASSERT_FALSE(Events.empty());

  // Every event names the traced function and an event kind.
  for (const std::string &E : Events) {
    EXPECT_EQ(E.rfind("fn=f ", 0), 0u) << E;
    EXPECT_NE(E.find(" ev="), std::string::npos) << E;
  }
  EXPECT_EQ(Events.front().rfind("fn=f ev=enter loc=test.c:1", 0), 0u)
      << Events.front();
  EXPECT_EQ(Events.back().rfind("fn=f ev=exit ", 0), 0u) << Events.back();

  auto CountOf = [&Events](const std::string &Needle) {
    size_t N = 0;
    for (const std::string &E : Events)
      if (E.find(Needle) != std::string::npos)
        ++N;
    return N;
  };
  EXPECT_EQ(CountOf("ev=split kind=if"), 1u);
  EXPECT_EQ(CountOf("ev=merge kind=if"), 1u);
  EXPECT_EQ(CountOf("ev=null ref=p"), 2u);
  EXPECT_EQ(CountOf("ev=write ref=*p"), 1u);
  // The trace is deterministic: a second run produces identical lines.
  EXPECT_EQ(Events, traceOf(Source, "f"));
}

TEST(TraceTest, OnlyNamedFunctionTraced) {
  const char *Source = "void a(char *p) { *p = 'x'; }\n"
                       "void b(char *q) { *q = 'y'; }\n";
  std::vector<std::string> Events = traceOf(Source, "b");
  ASSERT_FALSE(Events.empty());
  for (const std::string &E : Events)
    EXPECT_EQ(E.rfind("fn=b ", 0), 0u) << E;
  EXPECT_TRUE(traceOf(Source, "no_such_function").empty());
}

TEST(TraceTest, TraceDoesNotChangeDiagnostics) {
  CheckResult Plain = check(LeakySource);
  CheckOptions Options;
  Options.TraceFunction = "leak";
  Options.TraceSink = [](const std::string &) {};
  CheckResult Traced = Checker::checkSource(LeakySource, Options, "test.c");
  EXPECT_EQ(Plain.render(), Traced.render());
  EXPECT_EQ(Plain.Status, Traced.Status);
}

//===----------------------------------------------------------------------===//
// Batch metrics + journal round-trip
//===----------------------------------------------------------------------===//

/// Writes N synthetic files (a cycle of clean / leak / null-deref bodies)
/// into the VFS. Mirrors BatchDriverTest's corpus shape.
void buildMetricsCorpus(VFS &Files, std::vector<std::string> &Names,
                        unsigned N) {
  for (unsigned I = 0; I < N; ++I) {
    std::string Name = "m" + std::to_string(I) + ".c";
    std::string Src;
    switch (I % 3) {
    case 0:
      Src = "int ok" + std::to_string(I) + "(int x) { return x + 1; }\n";
      break;
    case 1:
      Src = "extern /*@only@*/ /*@null@*/ void *malloc(int n);\n"
            "void leak" + std::to_string(I) + "(void) {\n"
            "  char *p = (char *) malloc(8);\n"
            "  if (p) { *p = 'x'; }\n"
            "}\n";
      break;
    default:
      Src = "void nd" + std::to_string(I) +
            "(/*@null@*/ char *p) { *p = 'x'; }\n";
      break;
    }
    Files.add(Name, Src);
    Names.push_back(Name);
  }
}

BatchResult runBatchWithMetrics(unsigned Jobs, const std::string &Journal =
                                                   std::string()) {
  VFS Files;
  std::vector<std::string> Names;
  buildMetricsCorpus(Files, Names, 24);
  BatchOptions Options;
  Options.Jobs = Jobs;
  Options.CollectMetrics = true;
  Options.JournalPath = Journal;
  Options.Resume = !Journal.empty();
  return BatchDriver(Options).run(Files, Names);
}

TEST(BatchMetricsTest, CountersIdenticalAcrossJobCounts) {
  BatchResult R1 = runBatchWithMetrics(1);
  BatchResult R8 = runBatchWithMetrics(8);
  ASSERT_FALSE(R1.Metrics.Counters.empty());
  EXPECT_EQ(R1.Metrics.Counters, R8.Metrics.Counters);
  EXPECT_EQ(counter(R1.Metrics, "batch.files"), 24u);
  EXPECT_EQ(counter(R1.Metrics, "batch.ok") +
                counter(R1.Metrics, "batch.degraded"),
            24u);
  // Per-file fold really happened: the corpus defines one function per
  // file, and check.functions is the sum over all files.
  EXPECT_EQ(counter(R1.Metrics, "check.functions"), 24u);
}

TEST(BatchMetricsTest, OffByDefault) {
  VFS Files;
  std::vector<std::string> Names;
  buildMetricsCorpus(Files, Names, 3);
  BatchOptions Options;
  BatchResult R = BatchDriver(Options).run(Files, Names);
  EXPECT_TRUE(R.Metrics.empty());
  for (const FileOutcome &O : R.Outcomes)
    EXPECT_TRUE(O.Metrics.empty());
}

TEST(BatchMetricsTest, JournalEntryMetricsRoundTrip) {
  JournalEntry E;
  E.File = "m1.c";
  E.Status = "ok";
  E.Attempts = 1;
  E.Anomalies = 2;
  E.WallMs = 1.5;
  E.Diagnostics = "m1.c:3: leak\n";
  E.Metrics.Counters["check.functions"] = 1;
  E.Metrics.Counters["lex.tokens"] = 435;
  E.Metrics.TimersMs["phase.check"] = 1.25;

  std::string Text = journalHeaderLine("deadbeefdeadbeef", 1) + "\n" +
                     journalEntryLine(E) + "\n";
  JournalContents C = parseJournal(Text);
  ASSERT_TRUE(C.HeaderValid);
  EXPECT_EQ(C.CorruptLines, 0u);
  ASSERT_EQ(C.Entries.size(), 1u);
  EXPECT_EQ(C.Entries[0].Metrics.Counters, E.Metrics.Counters);
  EXPECT_EQ(C.Entries[0].Metrics.TimersMs, E.Metrics.TimersMs);
}

TEST(BatchMetricsTest, ResumedRunKeepsAggregateCounters) {
  std::string Journal =
      ::testing::TempDir() + "obs_metrics_journal.jsonl";
  std::remove(Journal.c_str());

  BatchResult First = runBatchWithMetrics(2, Journal);
  ASSERT_EQ(First.ResumedCount, 0u);
  BatchResult Second = runBatchWithMetrics(2, Journal);
  EXPECT_EQ(Second.ResumedCount, 24u);
  // Resumed outcomes carry their journaled metrics, so the aggregate
  // counter fold is complete even when nothing was re-checked.
  EXPECT_EQ(First.Metrics.Counters.count("check.functions"), 1u);
  auto FirstCounters = First.Metrics.Counters;
  auto SecondCounters = Second.Metrics.Counters;
  // batch.resumed legitimately differs; compare everything else.
  FirstCounters.erase("batch.resumed");
  SecondCounters.erase("batch.resumed");
  EXPECT_EQ(FirstCounters, SecondCounters);
  std::remove(Journal.c_str());
}

//===----------------------------------------------------------------------===//
// Latency histograms
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketBoundaryMath) {
  // Bucket 0: non-positive and sub-microsecond observations.
  EXPECT_EQ(metricsHistogramBucket(0.0), 0u);
  EXPECT_EQ(metricsHistogramBucket(-1.0), 0u);
  EXPECT_EQ(metricsHistogramBucket(0.0005), 0u); // 0.5 us
  // Bucket i holds [2^(i-1), 2^i) microseconds.
  EXPECT_EQ(metricsHistogramBucket(0.001), 1u);    // 1 us
  EXPECT_EQ(metricsHistogramBucket(0.001999), 1u); // just under 2 us
  EXPECT_EQ(metricsHistogramBucket(0.002), 2u);    // 2 us
  EXPECT_EQ(metricsHistogramBucket(0.004), 3u);    // 4 us
  EXPECT_EQ(metricsHistogramBucket(1.0), 10u);     // 1 ms = 1000 us < 1024
  EXPECT_EQ(metricsHistogramBucket(1.024), 11u);   // exactly 1024 us
  // Far past the top boundary clamps into the top bucket.
  EXPECT_EQ(metricsHistogramBucket(1e12), MetricsHistogram::MaxBucket);

  EXPECT_DOUBLE_EQ(metricsHistogramBucketUpperMs(0), 0.001);
  EXPECT_DOUBLE_EQ(metricsHistogramBucketUpperMs(1), 0.002);
  EXPECT_DOUBLE_EQ(metricsHistogramBucketUpperMs(10), 1.024);
}

TEST(HistogramTest, QuantilesReportBucketUpperBounds) {
  MetricsHistogram H;
  // 8 obs in bucket 7 ([64,128) us), 2 in bucket 10 ([512,1024) us).
  for (int I = 0; I < 8; ++I)
    H.record(0.100); // 100 us -> bucket 7
  H.record(0.600);   // 600 us -> bucket 10
  H.record(0.700);
  EXPECT_EQ(H.Count, 10u);
  EXPECT_EQ(H.Buckets.at(7), 8u);
  EXPECT_EQ(H.Buckets.at(10), 2u);
  // Rank ceil(0.5*10)=5 lands in bucket 7; ceil(0.9*10)=9 in bucket 10.
  EXPECT_DOUBLE_EQ(H.quantileUpperMs(0.50), 0.128);
  EXPECT_DOUBLE_EQ(H.quantileUpperMs(0.90), 1.024);
  EXPECT_DOUBLE_EQ(H.quantileUpperMs(0.99), 1.024);
  MetricsHistogram Empty;
  EXPECT_DOUBLE_EQ(Empty.quantileUpperMs(0.50), 0.0);
}

TEST(HistogramTest, MergeIsExactAndFoldOrderIndependent) {
  // Three "per-file" histograms folded in both orders give identical
  // bucket maps: the merge is exact per-bucket integer addition.
  MetricsHistogram A, B, C;
  A.record(0.001);
  A.record(0.100);
  B.record(0.100);
  B.record(3.0);
  C.record(0.0);
  MetricsHistogram Fwd, Rev;
  for (const MetricsHistogram *H : {&A, &B, &C})
    Fwd.merge(*H);
  for (const MetricsHistogram *H : {&C, &B, &A})
    Rev.merge(*H);
  EXPECT_EQ(Fwd.Count, 5u);
  EXPECT_EQ(Fwd.Count, Rev.Count);
  EXPECT_EQ(Fwd.Buckets, Rev.Buckets);

  MetricsSnapshot S1, S2;
  S1.Histograms["hist.x"] = A;
  S2.Histograms["hist.x"] = B;
  S2.Histograms["hist.y"] = C;
  S1.merge(S2);
  EXPECT_EQ(S1.Histograms["hist.x"].Count, 4u);
  EXPECT_EQ(S1.Histograms["hist.y"].Count, 1u);
}

TEST(HistogramTest, JsonRenderingAndEmptySection) {
  // Without histograms the rendering is byte-stable with older output: no
  // "histograms" section at all.
  MetricsSnapshot Plain;
  Plain.Counters["x"] = 1;
  Plain.TimersMs["t"] = 0.5;
  EXPECT_EQ(Plain.json().find("\"histograms\""), std::string::npos);

  MetricsSnapshot S = Plain;
  S.Histograms["hist.x"].record(0.100);
  std::string J = S.json();
  EXPECT_NE(J.find("\"histograms\""), std::string::npos);
  EXPECT_NE(J.find("\"count\":1"), std::string::npos);
  EXPECT_NE(J.find("\"p50_ms\":0.128"), std::string::npos);
  EXPECT_NE(J.find("\"buckets\":{\"7\":1}"), std::string::npos);
  // SkipTimers drops the wall-clock sections (timers AND histograms).
  std::string Det = S.json("", /*SkipTimers=*/true);
  EXPECT_EQ(Det.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(Det.find("\"timers_ms\""), std::string::npos);
}

TEST(HistogramTest, WireRoundTripAndMalformedRejected) {
  MetricsHistogram H;
  H.record(0.100);
  H.record(0.100);
  H.record(3.0);
  std::string Wire = histogramToWire(H);
  EXPECT_EQ(Wire, "3|7:2 12:1");

  MetricsHistogram Back;
  ASSERT_TRUE(histogramFromWire(Wire, Back));
  EXPECT_EQ(Back.Count, H.Count);
  EXPECT_EQ(Back.Buckets, H.Buckets);

  MetricsHistogram Empty;
  ASSERT_TRUE(histogramFromWire(histogramToWire(Empty), Empty));
  EXPECT_EQ(Empty.Count, 0u);

  for (const char *Bad :
       {"", "3", "x|7:3", "3|7:2", "3|7:2 7:1", "3|7:0 12:3", "3|99:3",
        "3|7:two 12:1", "-3|7:3", "3|7:2 12:1 trailing"}) {
    MetricsHistogram M;
    EXPECT_FALSE(histogramFromWire(Bad, M)) << Bad;
    EXPECT_EQ(M.Count, 0u) << Bad;
    EXPECT_TRUE(M.Buckets.empty()) << Bad;
  }
}

TEST(HistogramTest, JournalEntryHistogramRoundTrip) {
  JournalEntry E;
  E.File = "m1.c";
  E.Status = "ok";
  E.Attempts = 1;
  E.Metrics.Counters["check.functions"] = 1;
  E.Metrics.Histograms["hist.batch.file"].record(0.100);
  E.Metrics.Histograms["hist.batch.file"].record(3.0);

  std::string Text = journalHeaderLine("deadbeefdeadbeef", 1) + "\n" +
                     journalEntryLine(E) + "\n";
  JournalContents C = parseJournal(Text);
  ASSERT_TRUE(C.HeaderValid);
  EXPECT_EQ(C.CorruptLines, 0u);
  ASSERT_EQ(C.Entries.size(), 1u);
  const MetricsHistogram &Back =
      C.Entries[0].Metrics.Histograms.at("hist.batch.file");
  EXPECT_EQ(Back.Count, 2u);
  EXPECT_EQ(Back.Buckets, E.Metrics.Histograms["hist.batch.file"].Buckets);
}

TEST(HistogramTest, ScopedLatencyFeedsTimerAndHistogram) {
  { ScopedLatency L(nullptr, "t", "hist.t"); } // inert without a registry
  MetricsRegistry Reg;
  { ScopedLatency L(&Reg, "t", "hist.t"); }
  EXPECT_TRUE(Reg.snapshot().TimersMs.count("t"));
  ASSERT_TRUE(Reg.snapshot().Histograms.count("hist.t"));
  EXPECT_EQ(Reg.snapshot().Histograms.at("hist.t").Count, 1u);
}

TEST(BatchMetricsTest, HistogramsIdenticalAcrossJobCounts) {
  BatchResult R1 = runBatchWithMetrics(1);
  BatchResult R8 = runBatchWithMetrics(8);
  ASSERT_FALSE(R1.Metrics.Histograms.empty());
  // Key sets and observation counts are deterministic; bucket contents
  // are wall clock, so only the exact-count dimensions gate here.
  ASSERT_EQ(R1.Metrics.Histograms.size(), R8.Metrics.Histograms.size());
  auto It8 = R8.Metrics.Histograms.begin();
  for (const auto &[Name, Hist] : R1.Metrics.Histograms) {
    EXPECT_EQ(Name, It8->first);
    EXPECT_EQ(Hist.Count, It8->second.Count) << Name;
    ++It8;
  }
  EXPECT_EQ(R1.Metrics.Histograms.at("hist.batch.file").Count, 24u);
  EXPECT_EQ(R1.Metrics.Histograms.at("hist.check.function").Count,
            counter(R1.Metrics, "check.functions"));
}

//===----------------------------------------------------------------------===//
// Trace timeline
//===----------------------------------------------------------------------===//

TEST(TraceTimelineTest, ScopedSpanInertWithoutRecorder) {
  {
    ScopedTraceSpan S(nullptr, "check", "phase.test");
    S.arg("k", "v"); // must not crash
  }
  TraceRecorder R;
  {
    ScopedTraceSpan S(&R, "check", "phase.test");
    S.arg("k", "v");
  }
  ASSERT_EQ(R.events().size(), 1u);
  const TraceEvent &E = R.events()[0];
  EXPECT_EQ(E.Ph, 'X');
  EXPECT_EQ(E.Cat, "check");
  EXPECT_EQ(E.Name, "phase.test");
  ASSERT_EQ(E.Args.size(), 1u);
  EXPECT_EQ(E.Args[0].first, "k");
  EXPECT_EQ(E.Args[0].second, "v");
  EXPECT_GE(E.DurMs, 0.0);
}

TEST(TraceTimelineTest, ChromeTraceJsonWellFormed) {
  TraceRecorder R;
  R.setTid(3);
  { ScopedTraceSpan S(&R, "check", "phase.parse"); }
  R.instant("frontend", "pp.include_cache.hit", {{"file", "a \"b\".c"}});
  std::string J = renderChromeTrace(R.events());

  ASSERT_FALSE(J.empty());
  EXPECT_EQ(J.back(), '\n');
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(J.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"i\""), std::string::npos);
  // The 'X' span carries a duration; the instant does not.
  EXPECT_NE(J.find("\"dur\": "), std::string::npos);
  // Args are escaped JSON strings.
  EXPECT_NE(J.find("a \\\"b\\\".c"), std::string::npos);
  long Depth = 0;
  for (char C : J)
    Depth += C == '{' ? 1 : C == '}' ? -1 : 0;
  EXPECT_EQ(Depth, 0);
  // Only the two trivially well-formed phases are ever emitted.
  size_t Pos = 0;
  while ((Pos = J.find("\"ph\": \"", Pos)) != std::string::npos) {
    const char Ph = J[Pos + 7];
    EXPECT_TRUE(Ph == 'X' || Ph == 'i') << Ph;
    ++Pos;
  }
  // An empty trace still renders a loadable document.
  EXPECT_EQ(renderChromeTrace({}),
            "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n");
}

/// Projects a trace down to its deterministic dimensions: the (phase,
/// category, name, args) sequence. Timestamps, durations, and worker ids
/// are wall clock / scheduling and excluded by contract.
std::vector<std::string> traceShape(const std::vector<TraceEvent> &Events) {
  std::vector<std::string> Shape;
  for (const TraceEvent &E : Events) {
    std::string Line;
    Line += E.Ph;
    Line += "|" + E.Cat + "|" + E.Name;
    for (const auto &[K, V] : E.Args)
      Line += "|" + K + "=" + V;
    Shape.push_back(Line);
  }
  return Shape;
}

BatchResult runBatchWithTrace(unsigned Jobs) {
  VFS Files;
  std::vector<std::string> Names;
  buildMetricsCorpus(Files, Names, 12);
  BatchOptions Options;
  Options.Jobs = Jobs;
  Options.CollectTrace = true;
  return BatchDriver(Options).run(Files, Names);
}

TEST(TraceTimelineTest, BatchSpanSequenceIdenticalAcrossJobCounts) {
  BatchResult R1 = runBatchWithTrace(1);
  BatchResult R4 = runBatchWithTrace(4);
  ASSERT_FALSE(R1.Trace.empty());
  EXPECT_EQ(traceShape(R1.Trace), traceShape(R4.Trace));

  // Every file contributes exactly one closing "file" span with outcome
  // and attempt-count args, in input order.
  unsigned FileSpans = 0;
  for (const TraceEvent &E : R1.Trace)
    if (E.Cat == "batch" && E.Name == "file")
      ++FileSpans;
  EXPECT_EQ(FileSpans, 12u);
  EXPECT_EQ(R1.Trace.back().Cat, "batch");
  EXPECT_EQ(R1.Trace.back().Name, "file");
  bool SawOutcome = false, SawAttempts = false;
  for (const auto &[K, V] : R1.Trace.back().Args) {
    SawOutcome = SawOutcome || (K == "outcome" && !V.empty());
    SawAttempts = SawAttempts || (K == "attempts" && V == "1");
  }
  EXPECT_TRUE(SawOutcome);
  EXPECT_TRUE(SawAttempts);
}

TEST(TraceTimelineTest, BatchTraceOffByDefault) {
  VFS Files;
  std::vector<std::string> Names;
  buildMetricsCorpus(Files, Names, 3);
  BatchOptions Options;
  BatchResult R = BatchDriver(Options).run(Files, Names);
  EXPECT_TRUE(R.Trace.empty());
  for (const FileOutcome &O : R.Outcomes)
    EXPECT_TRUE(O.Trace.empty());
}

//===----------------------------------------------------------------------===//
// Service stats exposition
//===----------------------------------------------------------------------===//

TEST(ServiceStatsTest, StatsExposesHistogramsAndGauges) {
  VFS Files;
  Files.add("svc.c", LeakySource);
  ServiceOptions Options;
  Options.CollectMetrics = true;
  Options.FileSource = [&Files](const std::string &Name) {
    return Files.read(Name);
  };
  CheckService Service(Options);

  ServiceRequest Check;
  Check.Kind = ServiceRequestKind::Check;
  Check.File = "svc.c";
  ServiceReply Cold = Service.handle(Check);
  EXPECT_FALSE(Cold.CacheHit);
  ServiceReply Warm = Service.handle(Check);
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Cold.Diagnostics, Warm.Diagnostics);

  ServiceRequest Stats;
  Stats.Kind = ServiceRequestKind::Stats;
  ServiceReply Reply = Service.handle(Stats);
  EXPECT_EQ(Reply.Status, "stats");
  const std::string &Note = Reply.Note;
  // Counters render compact (metricsJsonCompact-style), histograms with
  // exact buckets plus derived quantiles, and the point-in-time gauges.
  EXPECT_NE(Note.find("\"service.requests\":3"), std::string::npos) << Note;
  EXPECT_NE(Note.find("\"hist.service.check\""), std::string::npos) << Note;
  EXPECT_NE(Note.find("\"p50_ms\""), std::string::npos) << Note;
  EXPECT_NE(Note.find("\"service.queue_depth\":0"), std::string::npos)
      << Note;
  EXPECT_NE(Note.find("\"service.uptime_ms\""), std::string::npos) << Note;
  EXPECT_NE(Note.find("\"mem.peak_rss_kb\""), std::string::npos) << Note;

  // The direct path records the check-latency distribution for every
  // check request — warm replays included, so the histogram shows what
  // clients actually wait, not just cold-check cost.
  MetricsSnapshot M = Service.metrics();
  ASSERT_TRUE(M.Histograms.count("hist.service.check"));
  EXPECT_EQ(M.Histograms.at("hist.service.check").Count, 2u);
  // metrics() stays deterministic: the stats gauges live only in the
  // stats reply, never in the folded snapshot.
  EXPECT_FALSE(M.Counters.count("service.uptime_ms"));
  EXPECT_FALSE(M.Counters.count("mem.peak_rss_kb"));
}

TEST(ServiceStatsTest, QueuePathRecordsQueueWait) {
  VFS Files;
  Files.add("svc.c", "int f(int x) { return x; }\n");
  ServiceOptions Options;
  Options.CollectMetrics = true;
  Options.CollectTrace = true;
  Options.FileSource = [&Files](const std::string &Name) {
    return Files.read(Name);
  };
  CheckService Service(Options);

  ServiceRequest Check;
  Check.Kind = ServiceRequestKind::Check;
  Check.File = "svc.c";
  std::mutex Mu;
  std::condition_variable Cv;
  unsigned Done = 0;
  for (int I = 0; I < 2; ++I)
    ASSERT_TRUE(Service.submit(Check, [&](const ServiceReply &) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Done;
      Cv.notify_all();
    }));
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Done == 2; });
  }

  MetricsSnapshot M = Service.metrics();
  ASSERT_TRUE(M.Histograms.count("hist.service.queue_wait"));
  EXPECT_EQ(M.Histograms.at("hist.service.queue_wait").Count, 2u);

  // The request lifecycle was traced: enqueue instants plus queue-wait
  // and request spans, with warm/cold provenance on the request span.
  std::vector<std::string> Shape = traceShape(Service.trace());
  unsigned Enqueues = 0, Requests = 0;
  bool SawCold = false, SawWarm = false;
  for (const std::string &Line : Shape) {
    Enqueues += Line.find("service.enqueue") != std::string::npos;
    Requests += Line.find("|service.request|") != std::string::npos;
    SawCold = SawCold || Line.find("source=cold") != std::string::npos;
    SawWarm = SawWarm || Line.find("source=warm") != std::string::npos;
  }
  EXPECT_EQ(Enqueues, 2u);
  EXPECT_EQ(Requests, 2u);
  EXPECT_TRUE(SawCold);
  EXPECT_TRUE(SawWarm);
}

//===----------------------------------------------------------------------===//
// Flood control: notes are exempt
//===----------------------------------------------------------------------===//

TEST(FloodControlTest, NotesExemptFromCaps) {
  DiagnosticEngine Diags;
  Diags.setFloodControl(/*PerClass=*/2, /*Total=*/3);
  for (int I = 0; I < 5; ++I)
    Diags.report(CheckId::MustFree, SourceLocation("f.c", I + 1, 0),
                 "leak " + std::to_string(I));
  for (int I = 0; I < 4; ++I)
    Diags.report(CheckId::MustFree, SourceLocation("f.c", I + 1, 0),
                 "notice " + std::to_string(I), Severity::Note);

  // Anomalies hit the per-class cap of 2; every note is stored anyway.
  EXPECT_EQ(Diags.cappedStoredCount(), 2u);
  EXPECT_EQ(Diags.diagnostics().size(), 6u);
  unsigned Notes = 0;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Sev == Severity::Note)
      ++Notes;
  EXPECT_EQ(Notes, 4u);
  ASSERT_TRUE(Diags.overflowCounts().count(CheckId::MustFree));
  EXPECT_EQ(Diags.overflowCounts().at(CheckId::MustFree), 3u);
}

TEST(FloodControlTest, NotesDoNotConsumeTotalCap) {
  DiagnosticEngine Diags;
  Diags.setFloodControl(/*PerClass=*/0, /*Total=*/2);
  // Interleave notes with anomalies: the notes must not eat the total
  // budget ahead of real findings.
  for (int I = 0; I < 3; ++I) {
    Diags.report(CheckId::NullDeref, SourceLocation("f.c", I + 1, 0),
                 "note " + std::to_string(I), Severity::Note);
    Diags.report(CheckId::NullDeref, SourceLocation("f.c", I + 1, 0),
                 "deref " + std::to_string(I));
  }
  EXPECT_EQ(Diags.cappedStoredCount(), 2u);
  EXPECT_EQ(Diags.diagnostics().size(), 5u); // 3 notes + 2 anomalies
  EXPECT_EQ(Diags.overflowCounts().at(CheckId::NullDeref), 1u);
}

TEST(FloodControlTest, BudgetNoticeSurvivesCappedRun) {
  // End-to-end: a capped run still reports its budget notice (a Note)
  // even when the overall message cap is exhausted by real findings.
  std::string Source = "extern /*@only@*/ /*@null@*/ void *malloc(int n);\n";
  for (int I = 0; I < 12; ++I)
    Source += "void leak" + std::to_string(I) +
              "(void) { char *p = (char *) malloc(8); if (p) { *p = 'x'; } }\n";
  CheckOptions Options;
  Options.Flags.limits().MaxDiagsTotal = 3;
  Options.Flags.limits().MaxTokens = 120; // forces a budget degradation
  CheckResult R = Checker::checkSource(Source, Options, "test.c");
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  bool SawNote = false;
  for (const Diagnostic &D : R.Diagnostics)
    SawNote = SawNote || D.Sev == Severity::Note;
  EXPECT_TRUE(SawNote) << R.render();
}

} // namespace
