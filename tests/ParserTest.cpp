//===--- ParserTest.cpp - Parser unit tests ------------------------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "checker/Frontend.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

/// Parses without the stdlib prelude for focused shape tests.
struct Parsed {
  Frontend FE;
  TranslationUnit *TU = nullptr;
};

std::unique_ptr<Parsed> parse(const std::string &Source,
                              bool Prelude = false) {
  auto P = std::make_unique<Parsed>();
  P->TU = P->FE.parseSource(Source, "test.c", Prelude);
  return P;
}

TEST(ParserTest, GlobalVariable) {
  auto P = parse("extern char *gname;");
  ASSERT_EQ(P->TU->globals().size(), 1u);
  VarDecl *VD = P->TU->globals()[0];
  EXPECT_EQ(VD->name(), "gname");
  EXPECT_TRUE(VD->type().isPointer());
  EXPECT_EQ(VD->storageClass(), StorageClass::Extern);
  EXPECT_TRUE(P->FE.diags().empty());
}

TEST(ParserTest, FunctionDefinition) {
  auto P = parse("int add(int a, int b) { return a + b; }");
  FunctionDecl *FD = P->TU->findFunction("add");
  ASSERT_NE(FD, nullptr);
  EXPECT_TRUE(FD->isDefinition());
  ASSERT_EQ(FD->params().size(), 2u);
  EXPECT_EQ(FD->params()[0]->name(), "a");
  EXPECT_TRUE(FD->returnType().isInteger());
}

TEST(ParserTest, AnnotationsOnParameter) {
  auto P = parse("void f(/*@null@*/ /*@only@*/ char *p) { }");
  FunctionDecl *FD = P->TU->findFunction("f");
  ASSERT_NE(FD, nullptr);
  const Annotations &A = FD->params()[0]->declAnnotations();
  EXPECT_EQ(A.Null, NullAnn::Null);
  EXPECT_EQ(A.Alloc, AllocAnn::Only);
}

TEST(ParserTest, AnnotationsOnReturn) {
  auto P = parse("extern /*@null@*/ /*@out@*/ /*@only@*/ void *xmalloc(int n);");
  FunctionDecl *FD = P->TU->findFunction("xmalloc");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->returnAnnotations().Null, NullAnn::Null);
  EXPECT_EQ(FD->returnAnnotations().Def, DefAnn::Out);
  EXPECT_EQ(FD->returnAnnotations().Alloc, AllocAnn::Only);
}

TEST(ParserTest, TypedefWithAnnotation) {
  auto P = parse("typedef /*@null@*/ struct _l { int v; } *lp;\n"
                 "lp make(void);");
  FunctionDecl *FD = P->TU->findFunction("make");
  ASSERT_NE(FD, nullptr);
  // The typedef's null flows into the effective return annotations.
  EXPECT_EQ(FD->effectiveReturnAnnotations().Null, NullAnn::Null);
  EXPECT_EQ(FD->returnAnnotations().Null, NullAnn::Unspecified);
}

TEST(ParserTest, NotnullOverridesTypedefNull) {
  auto P = parse("typedef /*@null@*/ char *np;\n"
                 "extern /*@notnull@*/ np g;");
  VarDecl *G = P->TU->globals()[0];
  EXPECT_EQ(G->effectiveAnnotations().Null, NullAnn::NotNull);
}

TEST(ParserTest, StructWithFields) {
  // Tag-only declarations register the record; reach it via a variable.
  auto P = parse("struct pair { int first; char *second; } g;");
  ASSERT_FALSE(P->TU->globals().empty());
  VarDecl *G = P->TU->globals()[0];
  const auto *RT = dyn_cast<RecordType>(G->type().canonical().type());
  ASSERT_NE(RT, nullptr);
  EXPECT_EQ(RT->decl()->fields().size(), 2u);
  EXPECT_EQ(RT->decl()->fields()[1]->name(), "second");
  EXPECT_TRUE(RT->decl()->fields()[1]->type().isPointer());
}

TEST(ParserTest, SelfReferentialStruct) {
  auto P = parse("struct node { int v; struct node *next; } n;");
  VarDecl *G = P->TU->globals()[0];
  const auto *RT = cast<RecordType>(G->type().canonical().type());
  FieldDecl *Next = RT->decl()->findField("next");
  ASSERT_NE(Next, nullptr);
  EXPECT_TRUE(Next->type().isPointer());
  const auto *PointeeRT = dyn_cast<RecordType>(
      Next->type().pointee().canonical().type());
  ASSERT_NE(PointeeRT, nullptr);
  EXPECT_EQ(PointeeRT->decl(), RT->decl());
}

TEST(ParserTest, EnumConstants) {
  auto P = parse("enum color { RED, GREEN = 5, BLUE };\n"
                 "int x = BLUE;");
  VarDecl *X = P->TU->globals()[0];
  ASSERT_NE(X->init(), nullptr);
  const auto *DRE = dyn_cast<DeclRefExpr>(X->init());
  ASSERT_NE(DRE, nullptr);
  const auto *EC = dyn_cast<EnumConstantDecl>(DRE->decl());
  ASSERT_NE(EC, nullptr);
  EXPECT_EQ(EC->value(), 6);
}

TEST(ParserTest, PrototypeMergedIntoDefinition) {
  auto P = parse("extern void f(/*@only@*/ char *p);\n"
                 "void f(char *p) { }");
  FunctionDecl *FD = P->TU->findFunction("f");
  ASSERT_NE(FD, nullptr);
  EXPECT_TRUE(FD->isDefinition());
  // The prototype's annotation flows to the definition's parameter.
  EXPECT_EQ(FD->params()[0]->declAnnotations().Alloc, AllocAnn::Only);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto P = parse("int g(int a, int b, int c) { return a + b * c; }");
  FunctionDecl *FD = P->TU->findFunction("g");
  const auto *RS =
      cast<ReturnStmt>(cast<CompoundStmt>(FD->body())->body()[0]);
  EXPECT_EQ(exprToString(RS->value()), "a + b * c");
  const auto *BE = cast<BinaryExpr>(RS->value());
  EXPECT_EQ(BE->op(), BinaryOp::Add); // '+' at the top, '*' below
  EXPECT_EQ(cast<BinaryExpr>(BE->rhs())->op(), BinaryOp::Mul);
}

TEST(ParserTest, AssignmentRightAssociative) {
  auto P = parse("int h(int a, int b) { a = b = 1; return a; }");
  FunctionDecl *FD = P->TU->findFunction("h");
  const auto *ES = cast<ExprStmt>(cast<CompoundStmt>(FD->body())->body()[0]);
  const auto *Outer = cast<BinaryExpr>(ES->expr());
  EXPECT_EQ(Outer->op(), BinaryOp::Assign);
  EXPECT_EQ(cast<BinaryExpr>(Outer->rhs())->op(), BinaryOp::Assign);
}

TEST(ParserTest, ConditionalExpression) {
  auto P = parse("int m(int a) { return a ? 1 : 2; }");
  FunctionDecl *FD = P->TU->findFunction("m");
  const auto *RS =
      cast<ReturnStmt>(cast<CompoundStmt>(FD->body())->body()[0]);
  EXPECT_TRUE(isa<ConditionalExpr>(RS->value()));
}

TEST(ParserTest, CastVsParenExpr) {
  auto P = parse("typedef int myint;\n"
                 "int f(int a) { return (myint) a + (a); }");
  EXPECT_TRUE(P->FE.diags().empty());
}

TEST(ParserTest, SizeofTypeAndExpr) {
  auto P = parse("struct s { int a; int b; };\n"
                 "int f(struct s *p) { return sizeof(struct s) + "
                 "sizeof(*p); }");
  EXPECT_TRUE(P->FE.diags().empty());
}

TEST(ParserTest, ArrowAndDotChains) {
  auto P = parse("struct in { int v; };\n"
                 "struct out { struct in *inner; };\n"
                 "int f(struct out *o) { return o->inner->v; }");
  ASSERT_TRUE(P->FE.diags().empty()) << P->FE.diags().str();
  FunctionDecl *FD = P->TU->findFunction("f");
  const auto *RS =
      cast<ReturnStmt>(cast<CompoundStmt>(FD->body())->body()[0]);
  EXPECT_EQ(exprToString(RS->value()), "o->inner->v");
  EXPECT_TRUE(RS->value()->type().isInteger());
}

TEST(ParserTest, UnknownFieldReported) {
  auto P = parse("struct s { int a; };\n"
                 "int f(struct s *p) { return p->nope; }");
  EXPECT_FALSE(P->FE.diags().empty());
}

TEST(ParserTest, StatementsAllForms) {
  auto P = parse(R"(int f(int n) {
  int i;
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i == 3) continue;
    acc += i;
  }
  while (acc > 100) { acc = acc - 1; }
  do { acc = acc + 0; } while (0);
  switch (acc) {
  case 0:
    return 0;
  case 1:
  case 2:
    acc = 5;
    break;
  default:
    break;
  }
  return acc;
})");
  ASSERT_TRUE(P->FE.diags().empty()) << P->FE.diags().str();
  FunctionDecl *FD = P->TU->findFunction("f");
  ASSERT_NE(FD, nullptr);
  // Switch shape: three sections, the middle one with two labels.
  const CompoundStmt *Body = FD->body();
  const SwitchStmt *SS = nullptr;
  for (const Stmt *S : Body->body())
    if (const auto *Sw = dyn_cast<SwitchStmt>(S))
      SS = Sw;
  ASSERT_NE(SS, nullptr);
  ASSERT_EQ(SS->sections().size(), 3u);
  EXPECT_EQ(SS->sections()[1].Labels.size(), 2u);
  EXPECT_TRUE(SS->sections()[2].IsDefault);
}

TEST(ParserTest, GotoRejected) {
  auto P = parse("void f(void) { goto end; end: ; }");
  EXPECT_FALSE(P->FE.diags().empty());
}

TEST(ParserTest, FunctionPointerDeclarator) {
  auto P = parse("int (*handler)(int, char *);");
  ASSERT_EQ(P->TU->globals().size(), 1u);
  VarDecl *H = P->TU->globals()[0];
  EXPECT_EQ(H->name(), "handler");
  ASSERT_TRUE(H->type().isPointer());
  EXPECT_TRUE(H->type().pointee().isFunction());
}

TEST(ParserTest, ArrayDeclarators) {
  auto P = parse("char name[24]; int grid[3][4];");
  VarDecl *Name = P->TU->globals()[0];
  const auto *AT = cast<ArrayType>(Name->type().canonical().type());
  EXPECT_EQ(AT->size(), 24);
  VarDecl *Grid = P->TU->globals()[1];
  const auto *Outer = cast<ArrayType>(Grid->type().canonical().type());
  ASSERT_EQ(Outer->size(), 3);
  const auto *Inner =
      cast<ArrayType>(Outer->element().canonical().type());
  EXPECT_EQ(Inner->size(), 4);
}

TEST(ParserTest, ImplicitFunctionDeclaration) {
  auto P = parse("int f(void) { return mystery(3); }");
  FunctionDecl *FD = P->TU->findFunction("mystery");
  ASSERT_NE(FD, nullptr);
  EXPECT_FALSE(FD->isDefinition());
}

TEST(ParserTest, UndeclaredIdentifierRecovered) {
  auto P = parse("int f(void) { return nowhere; }");
  EXPECT_FALSE(P->FE.diags().empty());
  // Parsing still produced the function.
  EXPECT_NE(P->TU->findFunction("f"), nullptr);
}

TEST(ParserTest, StringLiteralConcatenation) {
  auto P = parse(R"(char *s = "foo" "bar";)");
  const auto *SL = dyn_cast<StringLiteralExpr>(P->TU->globals()[0]->init());
  ASSERT_NE(SL, nullptr);
  EXPECT_EQ(SL->value(), "foobar");
}

TEST(ParserTest, LocalDeclarationsAndShadowing) {
  auto P = parse("int x;\n"
                 "int f(void) { int x = 3; { int x = 4; } return x; }");
  EXPECT_TRUE(P->FE.diags().empty());
}

TEST(ParserTest, BareNullIdentifierIsNullConstant) {
  // Unpreprocessed snippets may reference NULL without the prelude.
  auto P = parse("char *f(void) { return NULL; }", /*Prelude=*/false);
  EXPECT_TRUE(P->FE.diags().empty());
}

TEST(ParserTest, PreludeParsesCleanly) {
  auto P = parse("int main(void) { return 0; }", /*Prelude=*/true);
  EXPECT_TRUE(P->FE.diags().empty()) << P->FE.diags().str();
  EXPECT_NE(P->TU->findFunction("malloc"), nullptr);
  EXPECT_NE(P->TU->findFunction("free"), nullptr);
  EXPECT_NE(P->TU->findFunction("strcpy"), nullptr);
}

TEST(ParserTest, ASTPrinterRoundTrips) {
  auto P = parse("struct s { int a; };\n"
                 "int f(struct s *p) { return p->a + 1; }");
  ASTPrinter Printer;
  std::string Dump = Printer.print(*P->TU);
  EXPECT_NE(Dump.find("FunctionDecl f"), std::string::npos);
  EXPECT_NE(Dump.find("Member ->a"), std::string::npos);
  EXPECT_NE(Dump.find("Binary +"), std::string::npos);
}

TEST(ParserTest, CompoundEndLocTracked) {
  auto P = parse("void f(void)\n{\n  ;\n}\n");
  FunctionDecl *FD = P->TU->findFunction("f");
  EXPECT_EQ(FD->body()->endLoc().line(), 4u);
}

//===--- integer-literal evaluation -------------------------------------------===//

TEST(ParserTest, SuffixedIntegerLiteralsAccepted) {
  auto P = parse("int f(void) { return 10L + 0x1fUL + 07u + 2147483647; }");
  EXPECT_TRUE(P->FE.diags().empty()) << P->FE.diags().str();
}

TEST(ParserTest, OverflowingIntegerLiteralDiagnosed) {
  // Pre-fix, strtol's errno was never checked: the clamped LONG_MAX went
  // silently into the AST. Now the literal is diagnosed and parsing
  // continues.
  auto P = parse("int f(void) { return 99999999999999999999999; }");
  EXPECT_NE(P->FE.diags().str().find("out of range"), std::string::npos)
      << P->FE.diags().str();
  EXPECT_NE(P->TU->findFunction("f"), nullptr);
}

TEST(ParserTest, OverflowingEnumeratorDiagnosed) {
  auto P = parse("enum e { BIG = 99999999999999999999999, NEXT };");
  EXPECT_NE(P->FE.diags().str().find("out of range"), std::string::npos)
      << P->FE.diags().str();
}

TEST(ParserTest, OverflowingArraySizeFallsBackToUnknown) {
  // An overflowed size must not become a bogus concrete bound; the array
  // keeps an unknown size, like an unsized declarator.
  auto P = parse("char big[99999999999999999999999];");
  EXPECT_NE(P->FE.diags().str().find("out of range"), std::string::npos)
      << P->FE.diags().str();
  ASSERT_EQ(P->TU->globals().size(), 1u);
  const auto *AT =
      cast<ArrayType>(P->TU->globals()[0]->type().canonical().type());
  EXPECT_FALSE(AT->size().has_value());
}

TEST(ParserTest, MalformedIntegerLiteralDiagnosed) {
  // Hex prefix with no digits reaches the parser as one pp-number token.
  auto P = parse("int f(void) { return 0x; }");
  EXPECT_NE(P->FE.diags().str().find("malformed integer literal"),
            std::string::npos)
      << P->FE.diags().str();
  EXPECT_NE(P->TU->findFunction("f"), nullptr);
}

//===--- conflicting annotation words ------------------------------------------===//

TEST(ParserTest, ConflictingWordsOnOneDeclaratorDiagnosed) {
  // Two words of the same category on one declarator: the warning names
  // both words and the winner, and the earlier word stays in force.
  auto P = parse("void f(/*@only@*/ /*@temp@*/ char *p) { }");
  EXPECT_NE(P->FE.diags().str().find(
                "annotation 'temp' conflicts with earlier annotation 'only' "
                "in the same category; keeping 'only'"),
            std::string::npos)
      << P->FE.diags().str();
  FunctionDecl *FD = P->TU->findFunction("f");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->params()[0]->declAnnotations().Alloc, AllocAnn::Only);
}

TEST(ParserTest, ConflictingWordsInDeclSpecifiersDiagnosed) {
  // Return-position annotations ride the declaration specifiers; the same
  // first-wins rule and message shape apply there.
  auto P = parse("extern /*@null@*/ /*@notnull@*/ char *g(void);");
  EXPECT_NE(P->FE.diags().str().find(
                "annotation 'notnull' conflicts with earlier annotation "
                "'null' in the same category; keeping 'null'"),
            std::string::npos)
      << P->FE.diags().str();
  FunctionDecl *FD = P->TU->findFunction("g");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->returnAnnotations().Null, NullAnn::Null);
}

TEST(ParserTest, DeclDefParamAnnotationMismatchDiagnosed) {
  // A definition whose parameter annotation contradicts the earlier
  // declaration is diagnosed (not silently last-parse-wins), and the
  // declaration's word is kept.
  auto P = parse("extern void h(/*@temp@*/ char *p);\n"
                 "void h(/*@only@*/ char *p) { }\n");
  EXPECT_NE(P->FE.diags().str().find(
                "annotation 'only' on parameter 1 of 'h' conflicts with an "
                "earlier declaration's 'temp'; keeping 'temp'"),
            std::string::npos)
      << P->FE.diags().str();
  FunctionDecl *FD = P->TU->findFunction("h");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->params()[0]->declAnnotations().Alloc, AllocAnn::Temp);
}

TEST(ParserTest, DeclDefReturnAnnotationMismatchDiagnosed) {
  auto P = parse("extern /*@only@*/ char *mk(void);\n"
                 "/*@temp@*/ char *mk(void) { return 0; }\n");
  EXPECT_NE(P->FE.diags().str().find(
                "return annotation 'temp' on redeclaration of 'mk' conflicts "
                "with earlier 'only'; keeping 'only'"),
            std::string::npos)
      << P->FE.diags().str();
  FunctionDecl *FD = P->TU->findFunction("mk");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->returnAnnotations().Alloc, AllocAnn::Only);
}

TEST(ParserTest, GlobalRedeclarationAnnotationMismatchDiagnosed) {
  auto P = parse("extern /*@null@*/ char *gptr;\n"
                 "extern /*@notnull@*/ char *gptr;\n");
  EXPECT_NE(P->FE.diags().str().find(
                "annotation 'notnull' on redeclaration of 'gptr' conflicts "
                "with earlier 'null'; keeping 'null'"),
            std::string::npos)
      << P->FE.diags().str();
  ASSERT_EQ(P->TU->globals().size(), 1u);
  EXPECT_EQ(P->TU->globals()[0]->declAnnotations().Null, NullAnn::Null);
}

TEST(ParserTest, AgreeingRedeclarationAnnotationsAreQuiet) {
  // Identical annotations across declaration and definition: no warning.
  auto P = parse("extern void k(/*@only@*/ char *p);\n"
                 "void k(/*@only@*/ char *p) { free(p); }\n",
                 /*Prelude=*/true);
  EXPECT_EQ(P->FE.diags().str().find("conflicts"), std::string::npos)
      << P->FE.diags().str();
}

} // namespace
