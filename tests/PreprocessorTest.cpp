//===--- PreprocessorTest.cpp - Preprocessor unit tests -----------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "pp/Preprocessor.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

std::vector<std::string> spellings(const std::vector<Token> &Toks) {
  std::vector<std::string> Out;
  for (const Token &T : Toks)
    if (!T.isEof())
      Out.push_back(T.Text);
  return Out;
}

std::vector<Token> pp(const std::string &Source, VFS Files = VFS()) {
  DiagnosticEngine Diags;
  Preprocessor P(Files, Diags);
  return P.processSource("main.c", Source);
}

TEST(PreprocessorTest, ObjectMacro) {
  std::vector<std::string> S = spellings(pp("#define N 42\nint x = N;"));
  std::vector<std::string> Expected = {"int", "x", "=", "42", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, ObjectMacroMultiToken) {
  std::vector<std::string> S =
      spellings(pp("#define NIL ((void *) 0)\np = NIL;"));
  std::vector<std::string> Expected = {"p", "=", "(", "(", "void", "*",
                                       ")", "0", ")", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, FunctionMacro) {
  std::vector<std::string> S =
      spellings(pp("#define SQ(x) ((x) * (x))\ny = SQ(a + 1);"));
  std::vector<std::string> Expected = {"y", "=", "(", "(", "a", "+", "1",
                                       ")", "*", "(", "a", "+", "1", ")",
                                       ")", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, FunctionMacroTwoParams) {
  std::vector<std::string> S =
      spellings(pp("#define ADD(a, b) (a + b)\nz = ADD(1, 2);"));
  std::vector<std::string> Expected = {"z", "=", "(", "1", "+", "2", ")",
                                       ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, FunctionMacroNameWithoutParensIsPlain) {
  std::vector<std::string> S = spellings(pp("#define F(x) x\nint F;"));
  std::vector<std::string> Expected = {"int", "F", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, MacroBodyKeepsDefinitionLocations) {
  // Anomalies inside macro expansions report at the macro definition
  // (the paper's "erc.h:14" message for erc_choose).
  VFS Files;
  Files.add("h.h", "#define GET(c) (c->vals)\n");
  DiagnosticEngine Diags;
  Preprocessor P(Files, Diags);
  std::vector<Token> Toks =
      P.processSource("main.c", "#include \"h.h\"\nx = GET(y);");
  // Find the '->' token: it must carry h.h line 1.
  bool Found = false;
  for (const Token &T : Toks)
    if (T.is(TokenKind::Arrow)) {
      EXPECT_EQ(T.Loc.file(), "h.h");
      EXPECT_EQ(T.Loc.line(), 1u);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(PreprocessorTest, MacroArgumentsKeepUseLocations) {
  std::vector<Token> Toks = pp("#define ID(x) x\n\n\nq = ID(zz);");
  for (const Token &T : Toks)
    if (T.Text == "zz")
      EXPECT_EQ(T.Loc.line(), 4u);
}

TEST(PreprocessorTest, Undef) {
  std::vector<std::string> S =
      spellings(pp("#define N 1\n#undef N\nint N;"));
  std::vector<std::string> Expected = {"int", "N", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, Include) {
  VFS Files;
  Files.add("defs.h", "#define K 7\n");
  DiagnosticEngine Diags;
  Preprocessor P(Files, Diags);
  std::vector<Token> Toks =
      P.processSource("main.c", "#include \"defs.h\"\nint x = K;");
  std::vector<std::string> Expected = {"int", "x", "=", "7", ";"};
  EXPECT_EQ(spellings(Toks), Expected);
}

TEST(PreprocessorTest, UnknownSystemHeaderTolerated) {
  DiagnosticEngine Diags;
  VFS Files;
  Preprocessor P(Files, Diags);
  std::vector<Token> Toks =
      P.processSource("main.c", "#include <stdio.h>\nint x;");
  EXPECT_TRUE(Diags.empty());
  std::vector<std::string> Expected = {"int", "x", ";"};
  EXPECT_EQ(spellings(Toks), Expected);
}

TEST(PreprocessorTest, IncludeCycleBroken) {
  VFS Files;
  Files.add("a.h", "#include \"b.h\"\nint a;\n");
  Files.add("b.h", "#include \"a.h\"\nint b;\n");
  DiagnosticEngine Diags;
  Preprocessor P(Files, Diags);
  std::vector<Token> Toks = P.process("a.h");
  std::vector<std::string> Expected = {"int", "b", ";", "int", "a", ";"};
  EXPECT_EQ(spellings(Toks), Expected);
}

TEST(PreprocessorTest, IfdefTaken) {
  std::vector<std::string> S = spellings(
      pp("#define Y 1\n#ifdef Y\nint yes;\n#else\nint no;\n#endif"));
  std::vector<std::string> Expected = {"int", "yes", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, IfndefWithGuardPattern) {
  VFS Files;
  Files.add("g.h", "#ifndef G_H\n#define G_H\nint once;\n#endif\n");
  DiagnosticEngine Diags;
  Preprocessor P(Files, Diags);
  std::vector<Token> Toks = P.processSource(
      "main.c", "#include \"g.h\"\n#include \"g.h\"\n");
  std::vector<std::string> Expected = {"int", "once", ";"};
  EXPECT_EQ(spellings(Toks), Expected);
}

TEST(PreprocessorTest, IfZeroSkips) {
  std::vector<std::string> S =
      spellings(pp("#if 0\nint dead;\n#endif\nint live;"));
  std::vector<std::string> Expected = {"int", "live", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, IfDefined) {
  std::vector<std::string> S = spellings(pp(
      "#define A 1\n#if defined(A)\nint a;\n#endif\n#if !defined(B)\nint "
      "nb;\n#endif"));
  std::vector<std::string> Expected = {"int", "a", ";", "int", "nb", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, NestedConditionals) {
  std::vector<std::string> S = spellings(
      pp("#if 1\n#if 0\nint a;\n#else\nint b;\n#endif\n#endif"));
  std::vector<std::string> Expected = {"int", "b", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, ControlCommentsExtracted) {
  DiagnosticEngine Diags;
  VFS Files;
  Preprocessor P(Files, Diags);
  std::vector<Token> Toks = P.processSource(
      "main.c", "int a;\n/*@-mustfree@*/\nint b;\n/*@=mustfree@*/\n");
  std::vector<std::string> Expected = {"int", "a", ";", "int", "b", ";"};
  EXPECT_EQ(spellings(Toks), Expected);
  ASSERT_EQ(P.controlDirectives().size(), 2u);
  EXPECT_EQ(P.controlDirectives()[0].Text, "-mustfree");
  EXPECT_EQ(P.controlDirectives()[0].Loc.line(), 2u);
  EXPECT_EQ(P.controlDirectives()[1].Text, "=mustfree");
}

TEST(PreprocessorTest, Predefine) {
  DiagnosticEngine Diags;
  VFS Files;
  Preprocessor P(Files, Diags);
  P.predefine("VERSION", "3");
  std::vector<Token> Toks = P.processSource("main.c", "int v = VERSION;");
  std::vector<std::string> Expected = {"int", "v", "=", "3", ";"};
  EXPECT_EQ(spellings(Toks), Expected);
}

TEST(PreprocessorTest, RecursiveMacroStops) {
  std::vector<std::string> S = spellings(pp("#define X X\nint X;"));
  std::vector<std::string> Expected = {"int", "X", ";"};
  EXPECT_EQ(S, Expected);
}

TEST(PreprocessorTest, MissingFileReported) {
  DiagnosticEngine Diags;
  VFS Files;
  Preprocessor P(Files, Diags);
  P.process("nope.c");
  EXPECT_FALSE(Diags.empty());
}

} // namespace
