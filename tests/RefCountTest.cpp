//===--- RefCountTest.cpp - Reference-counting annotation tests ----------------===//
//
// Part of memlint. See DESIGN.md. These annotations implement the paper's
// Section 4 pointer: "Additional annotations provided for handling
// reference counted storage ... are described in [3]" (LCLint 2.0's
// refcounted/newref/killref/tempref).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/Annotations.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

const char *RcPrelude =
    "typedef /*@refcounted@*/ struct _rc { /*@refs@*/ int refs; int v; } "
    "*rc;\n"
    "extern /*@newref@*/ rc rc_create(void);\n"
    "extern /*@newref@*/ rc rc_ref(/*@tempref@*/ rc o);\n"
    "extern void rc_release(/*@killref@*/ rc o);\n"
    "extern int rc_value(/*@tempref@*/ rc o);\n";

std::string withPrelude(const std::string &Body) {
  return std::string(RcPrelude) + Body;
}

TEST(RefCountTest, BalancedNewrefKillrefClean) {
  CheckResult R = check(withPrelude("int f(void) {\n"
                                    "  rc o = rc_create();\n"
                                    "  int v = rc_value(o);\n"
                                    "  rc_release(o);\n"
                                    "  return v;\n"
                                    "}"));
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(RefCountTest, MissingKillrefIsLeak) {
  CheckResult R = check(withPrelude("int f(void) {\n"
                                    "  rc o = rc_create();\n"
                                    "  return rc_value(o);\n"
                                    "}"));
  EXPECT_GE(countOf(R, CheckId::MustFree), 1u);
  EXPECT_TRUE(R.contains("missing killref")) << R.render();
}

TEST(RefCountTest, UsableAfterKillref) {
  // Unlike free, releasing a reference does not make the value dead — the
  // count may still be positive. (The unsound optimistic view, like the
  // rest of the analysis.)
  CheckResult R = check(withPrelude("int f(/*@tempref@*/ rc shared) {\n"
                                    "  rc o = rc_ref(shared);\n"
                                    "  rc_release(o);\n"
                                    "  return rc_value(shared);\n"
                                    "}"));
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(RefCountTest, RefcountedStorageNotFreeable) {
  CheckResult R = check(withPrelude("void f(void) {\n"
                                    "  rc o = rc_create();\n"
                                    "  free((void *) o);\n"
                                    "}"));
  EXPECT_GE(countOf(R, CheckId::AliasTransfer), 1u);
  EXPECT_TRUE(R.contains("refcounted storage o passed as only param"))
      << R.render();
}

TEST(RefCountTest, OnlyStoragePassedAsKillref) {
  CheckResult R = check(withPrelude(
      "void f(void) {\n"
      "  char *p = (char *) malloc(4);\n"
      "  if (p == NULL) { return; }\n"
      "  p[0] = 'x';\n"
      "  rc_release((rc) p);\n" // malloc'd storage is not refcounted
      "}"));
  EXPECT_GE(countOf(R, CheckId::AliasTransfer), 1u);
}

TEST(RefCountTest, NewRefOnParameterRejected) {
  CheckResult R = check("extern void f(/*@newref@*/ char *p);");
  EXPECT_GE(countOf(R, CheckId::AnnotationError), 1u);
}

TEST(RefCountTest, KillRefOnReturnRejected) {
  CheckResult R = check("extern /*@killref@*/ char *f(void);");
  EXPECT_GE(countOf(R, CheckId::AnnotationError), 1u);
}

TEST(RefCountTest, NewRefKillRefConflict) {
  Annotations A;
  EXPECT_TRUE(A.addWord("newref"));
  EXPECT_FALSE(A.addWord("killref"));
  EXPECT_FALSE(A.addWord("tempref"));
}

TEST(RefCountTest, RefsFieldPlacement) {
  EXPECT_EQ(countOf(check("struct s { /*@refs@*/ int count; };"),
                    CheckId::AnnotationError),
            0u);
  EXPECT_GE(countOf(check("extern /*@refs@*/ int g;"),
                    CheckId::AnnotationError),
            1u);
}

TEST(RefCountTest, BranchedReleaseConflicts) {
  // Releasing a reference on one branch only is the same confluence
  // anomaly as losing an only obligation on one branch.
  CheckResult R = check(withPrelude("void f(int c) {\n"
                                    "  rc o = rc_create();\n"
                                    "  if (c) {\n"
                                    "    rc_release(o);\n"
                                    "  }\n"
                                    "}"));
  EXPECT_GE(R.anomalyCount(), 1u) << R.render();
}

} // namespace
