//===--- RobustnessTest.cpp - The pipeline never crashes or hangs --------------===//
//
// Part of memlint. See DESIGN.md.
//
// Failure-injection properties: deterministic mutations of valid corpus
// programs (truncations, character deletions, token-level noise) must never
// crash, hang, or silently corrupt the checker — only produce diagnostics.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "corpus/Corpus.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::corpus;

namespace {

std::string dbSourceConcatenated() {
  Program P = employeeDb(DbVersion::Fixed);
  std::string All;
  for (const std::string &Name : P.MainFiles)
    All += *P.Files.read(Name);
  return All;
}

// Truncation sweep: checking any prefix of a valid program terminates.
class TruncationTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TruncationTest, PrefixDoesNotCrash) {
  static const std::string Full = dbSourceConcatenated();
  size_t Cut = Full.size() * GetParam() / 100;
  CheckResult R =
      Checker::checkSource(Full.substr(0, Cut), CheckOptions(), "cut.c");
  // No assertion on counts: the property is termination without crash.
  (void)R;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Percentages, TruncationTest,
                         ::testing::Values(3u, 11u, 27u, 42u, 58u, 73u, 89u,
                                           97u));

// Deletion sweep: removing a block of characters anywhere keeps the
// pipeline terminating.
class DeletionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeletionTest, HoleDoesNotCrash) {
  static const std::string Full = dbSourceConcatenated();
  size_t Start = Full.size() * GetParam() / 100;
  size_t Len = std::min<size_t>(97, Full.size() - Start);
  std::string Mutated = Full.substr(0, Start) + Full.substr(Start + Len);
  CheckResult R = Checker::checkSource(Mutated, CheckOptions(), "hole.c");
  (void)R;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Positions, DeletionTest,
                         ::testing::Values(5u, 20u, 35u, 50u, 65u, 80u,
                                           95u));

TEST(RobustnessTest, GarbageInputTerminates) {
  const char *Garbage[] = {
      "",
      ";;;;;",
      "}}}}}",
      "((((((",
      "int int int int",
      "/*@",
      "/*@null@*/ /*@null@*/ /*@null@*/",
      "#define A B\n#define B A\nA",
      "#if 1\n#if 0\nint x;",
      "void f( { ) }",
      "struct s { struct s x; } y;",
      "\"unterminated",
      "int f() { return 1 + ; }",
      "typedef typedef int t;",
      "a b c d e f g h i j k l m n o p q r s t u v w x y z",
  };
  for (const char *Source : Garbage) {
    CheckResult R = Checker::checkSource(Source, CheckOptions(), "junk.c");
    (void)R;
  }
  SUCCEED();
}

TEST(RobustnessTest, DeeplyNestedExpressionsTerminate) {
  std::string Source = "int f(int a) { return ";
  for (int I = 0; I < 200; ++I)
    Source += "(";
  Source += "a";
  for (int I = 0; I < 200; ++I)
    Source += ")";
  Source += "; }";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "deep.c");
  EXPECT_EQ(R.anomalyCount(), 0u);
}

TEST(RobustnessTest, DeeplyNestedBlocksTerminate) {
  std::string Source = "void f(void) { ";
  for (int I = 0; I < 150; ++I)
    Source += "{ ";
  Source += "; ";
  for (int I = 0; I < 150; ++I)
    Source += "} ";
  Source += "}";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "deep.c");
  (void)R;
  SUCCEED();
}

TEST(RobustnessTest, LongFieldChainsCapped) {
  // Reference paths are depth-capped; very deep chains must not blow up
  // the environment.
  std::string Source = "typedef /*@null@*/ struct _n { "
                       "/*@null@*/ struct _n *next; } *node;\n"
                       "int f(/*@temp@*/ node l) {\n"
                       "  return l";
  for (int I = 0; I < 30; ++I)
    Source += "->next";
  Source += " == NULL; }";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "chain.c");
  (void)R;
  SUCCEED();
}

TEST(RobustnessTest, ManyAliasesTerminate) {
  std::string Source = "void f(/*@temp@*/ char *p) {\n";
  for (int I = 0; I < 40; ++I)
    Source += "  char *q" + std::to_string(I) + " = p;\n";
  Source += "}";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "alias.c");
  EXPECT_EQ(R.anomalyCount(), 0u) << R.render();
}

TEST(RobustnessTest, ErrorCapPreventsFloods) {
  // A pathological file reports a bounded number of parse errors.
  std::string Source;
  for (int I = 0; I < 500; ++I)
    Source += "@ ";
  CheckResult R = Checker::checkSource(Source, CheckOptions(), "flood.c");
  EXPECT_LE(R.Diagnostics.size(), 600u);
}

//===--- seeded mutation sweeps ------------------------------------------------===//
//
// Deterministic pseudo-random mutations (fixed LCG seeds, no real entropy)
// of a valid corpus program. The property under test is containment: every
// mutant terminates and never escapes as an internal error.

unsigned lcgNext(unsigned &State) {
  State = State * 1664525u + 1013904223u;
  return State >> 16;
}

TEST(RobustnessTest, SeededCharDeletionSweepContained) {
  static const std::string Full = dbSourceConcatenated();
  unsigned Seed = 0xC0FFEEu;
  for (int Round = 0; Round < 16; ++Round) {
    std::string Mutated = Full;
    for (int K = 0; K < 8 && !Mutated.empty(); ++K)
      Mutated.erase(lcgNext(Seed) % Mutated.size(), 1);
    CheckResult R = Checker::checkSource(Mutated, CheckOptions(), "mut.c");
    EXPECT_NE(R.Status, CheckStatus::InternalError)
        << "round " << Round << "\n"
        << R.render();
  }
}

TEST(RobustnessTest, SeededTokenTranspositionSweepContained) {
  static const std::string Full = dbSourceConcatenated();
  unsigned Seed = 0xBADF00Du;
  for (int Round = 0; Round < 16; ++Round) {
    // Split on whitespace, swap random word pairs, rejoin.
    std::vector<std::string> Words;
    std::string Cur;
    for (char C : Full) {
      if (C == ' ' || C == '\n' || C == '\t') {
        if (!Cur.empty())
          Words.push_back(Cur);
        Cur.clear();
      } else {
        Cur += C;
      }
    }
    if (!Cur.empty())
      Words.push_back(Cur);
    for (int K = 0; K < 6; ++K)
      std::swap(Words[lcgNext(Seed) % Words.size()],
                Words[lcgNext(Seed) % Words.size()]);
    std::string Mutated;
    for (const std::string &W : Words)
      Mutated += W + " ";
    CheckResult R = Checker::checkSource(Mutated, CheckOptions(), "swap.c");
    EXPECT_NE(R.Status, CheckStatus::InternalError)
        << "round " << Round << "\n"
        << R.render();
  }
}

TEST(RobustnessTest, SeededAnnotationGarblingSweepContained) {
  static const std::string Full = dbSourceConcatenated();
  unsigned Seed = 0xDEADBEEFu;
  static const char Garble[] = "@*/na ulxq-=+";
  for (int Round = 0; Round < 16; ++Round) {
    std::string Mutated = Full;
    // Garble characters inside annotation comments only.
    for (size_t Pos = Mutated.find("/*@"); Pos != std::string::npos;
         Pos = Mutated.find("/*@", Pos + 1)) {
      size_t End = Mutated.find("@*/", Pos + 3);
      if (End == std::string::npos)
        break;
      if (lcgNext(Seed) % 3 == 0) {
        size_t Target = Pos + 3 + lcgNext(Seed) % (End - Pos - 3 + 1);
        Mutated[Target] = Garble[lcgNext(Seed) % (sizeof(Garble) - 1)];
      }
    }
    CheckResult R = Checker::checkSource(Mutated, CheckOptions(), "ann.c");
    EXPECT_NE(R.Status, CheckStatus::InternalError)
        << "round " << Round << "\n"
        << R.render();
  }
}

TEST(RobustnessTest, GeneratedDeepNestingContained) {
  // Several nesting shapes at depths far beyond the recursion budget.
  struct Shape {
    const char *Prefix;
    const char *Open;
    const char *Mid;
    const char *Close;
    const char *Suffix;
  };
  const Shape Shapes[] = {
      {"int f(int a) { return ", "(", "a", ")", "; }"},
      {"void f(void) { ", "{ ", ";", " }", " }"},
      {"void f(int a) { ", "if (a) { ", ";", " }", " }"},
      {"int x = ", "1 + (", "1", ")", ";"},
  };
  for (const Shape &S : Shapes) {
    std::string Source = S.Prefix;
    for (int I = 0; I < 5000; ++I)
      Source += S.Open;
    Source += S.Mid;
    for (int I = 0; I < 5000; ++I)
      Source += S.Close;
    Source += S.Suffix;
    CheckResult R = Checker::checkSource(Source, CheckOptions(), "gen.c");
    EXPECT_NE(R.Status, CheckStatus::InternalError) << S.Prefix;
  }
}

//===--- cooperative cancellation ----------------------------------------------===//
//
// Cancellation rides the budget checkpoints, so cancelling after exactly N
// checkpoints for every small N (and a spread of larger strides crossing
// preprocessing, parsing, and analysis) probes an abort at every stage
// boundary. The property: never a crash or leak (the ASan preset runs this
// suite too), always either a clean completion or a Degraded result
// carrying the cancellation reason — never InternalError.

TEST(RobustnessTest, CancellationAtEveryCheckpointSweepIsContained) {
  static const std::string Full = dbSourceConcatenated();
  std::vector<unsigned long> Points;
  for (unsigned long N = 0; N <= 24; ++N)
    Points.push_back(N);
  for (unsigned long N : {50ul, 200ul, 1000ul, 5000ul, 20000ul, 100000ul,
                          1000000ul})
    Points.push_back(N);

  for (unsigned long N : Points) {
    CancelToken Token;
    Token.cancelAfterCheckpoints(N);
    CheckOptions Options;
    Options.Cancel = &Token;
    CheckResult R = Checker::checkSource(Full, Options, "sweep.c");
    EXPECT_NE(R.Status, CheckStatus::InternalError)
        << "cancel after " << N << "\n"
        << R.render();
    if (Token.cancelled()) {
      EXPECT_EQ(R.Status, CheckStatus::Degraded) << "cancel after " << N;
      bool HasReason = false;
      for (const std::string &Reason : R.DegradationReasons)
        HasReason |= Reason == "cancelled";
      EXPECT_TRUE(HasReason) << "cancel after " << N;
      EXPECT_TRUE(R.contains("check run cancelled (cancelled)"))
          << "cancel after " << N << "\n"
          << R.render();
    } else {
      // The run finished before checkpoint N: results must be the full
      // ones, not silently clipped.
      EXPECT_EQ(R.Status, CheckStatus::Ok) << "cancel after " << N;
    }
  }
}

TEST(RobustnessTest, CancelledRunKeepsDiagnosticsFoundBeforeCutoff) {
  // A file whose anomaly is found early, followed by enough code that a
  // late cancellation still has work left to abandon.
  std::string Source = "void early(/*@null@*/ char *p) { *p = 'x'; }\n";
  for (int I = 0; I < 50; ++I)
    Source += "int f" + std::to_string(I) + "(int a) { return a + " +
              std::to_string(I) + "; }\n";

  // Find the full run's checkpoint count, then cancel at the very last
  // checkpoint: by then every function but the tail has been analysed, so
  // early()'s diagnostic must already be in the result.
  CancelToken Probe;
  CheckOptions ProbeOptions;
  ProbeOptions.Cancel = &Probe;
  CheckResult FullRun = Checker::checkSource(Source, ProbeOptions, "cut.c");
  ASSERT_FALSE(Probe.cancelled());
  ASSERT_TRUE(FullRun.contains("possibly null pointer p"));
  ASSERT_GE(Probe.checkpoints(), 2ul);

  CancelToken Token;
  Token.cancelAfterCheckpoints(Probe.checkpoints() - 1);
  CheckOptions Options;
  Options.Cancel = &Token;
  CheckResult R = Checker::checkSource(Source, Options, "cut.c");
  ASSERT_TRUE(Token.cancelled());
  EXPECT_EQ(R.Status, CheckStatus::Degraded);
  EXPECT_TRUE(R.contains("possibly null pointer p")) << R.render();
}

//===--- journal damage recovery -----------------------------------------------===//

TEST(RobustnessTest, JournalTruncationSweepNeverCrashesAndSalvagesPrefix) {
  // A journal killed at any byte must still load: intact leading lines are
  // salvaged, the torn tail is discarded and counted.
  std::vector<JournalEntry> Entries(3);
  Entries[0] = {"a.c", "ok", {}, 1, 0, 0, 1.0, ""};
  Entries[1] = {"b.c", "degraded", {"limittokens"}, 1, 2, 0, 2.0,
                "b.c:1: msg\n"};
  Entries[2] = {"c.c", "crash", {"internal-error"}, 2, 0, 0, 3.0,
                "c.c:1: internal error\n"};
  std::string Text = journalHeaderLine(fnv1aHex({"a.c", "b.c", "c.c"}), 3);
  Text += "\n";
  for (const JournalEntry &E : Entries)
    Text += journalEntryLine(E) + "\n";

  for (size_t Cut = 0; Cut <= Text.size(); ++Cut) {
    JournalContents C = parseJournal(Text.substr(0, Cut));
    EXPECT_LE(C.Entries.size(), 3u);
    // Salvaged entries are exactly the fully-written prefix, in order.
    for (size_t I = 0; I < C.Entries.size(); ++I) {
      EXPECT_EQ(C.Entries[I].File, Entries[I].File) << "cut at " << Cut;
      EXPECT_EQ(C.Entries[I].Status, Entries[I].Status) << "cut at " << Cut;
    }
  }
}

TEST(RobustnessTest, JournalGarbageLinesAreCountedNotFatal) {
  std::string Text = journalHeaderLine("feedbeef00000000", 2) + "\n";
  Text += "not json at all\n";
  Text += "{\"file\":\"ok.c\",\"status\":\"ok\"}\n";
  Text += "{\"file\":\"bad.c\",\"status\":\"no-such-status\"}\n";
  Text += "{\"file\":\"torn.c\",\"status\":\"ok\",\"att\n";
  Text += "\n"; // blank lines are ignored, not corrupt
  JournalContents C = parseJournal(Text);
  EXPECT_TRUE(C.HeaderValid);
  ASSERT_EQ(C.Entries.size(), 1u);
  EXPECT_EQ(C.Entries[0].File, "ok.c");
  EXPECT_EQ(C.CorruptLines, 3u);
}

TEST(RobustnessTest, BudgetExhaustionYieldsPartialResults) {
  // A tight statement budget degrades the run but keeps the diagnostics
  // found before the cut-off.
  CheckOptions Options;
  Options.Flags.limits().MaxStmtsPerFunction = 3;
  std::string Source = "void early(/*@null@*/ char *p) { *p = 'x'; }\n"
                       "void big(void) {\n  int x;\n  x = 0;\n";
  for (int I = 0; I < 50; ++I)
    Source += "  x = x + 1;\n";
  Source += "}\n";
  CheckResult R = Checker::checkSource(Source, Options, "budget.c");
  EXPECT_EQ(R.Status, CheckStatus::Degraded) << R.render();
  EXPECT_TRUE(R.contains("possibly null pointer p")) << R.render();
  EXPECT_TRUE(R.contains("statement budget exceeded")) << R.render();
}

} // namespace
