//===--- SemaTest.cpp - Annotation placement validation tests ------------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlint;
using namespace memlint::test;

namespace {

unsigned annotErrors(const std::string &Source) {
  return countOf(check(Source), CheckId::AnnotationError);
}

TEST(SemaTest, TempOnGlobalRejected) {
  EXPECT_GE(annotErrors("extern /*@temp@*/ char *g;"), 1u);
}

TEST(SemaTest, KeepOnGlobalRejected) {
  EXPECT_GE(annotErrors("extern /*@keep@*/ char *g;"), 1u);
}

TEST(SemaTest, TempOnParameterAccepted) {
  EXPECT_EQ(annotErrors("extern void f(/*@temp@*/ char *p);"), 0u);
}

TEST(SemaTest, UniqueOnGlobalRejected) {
  EXPECT_GE(annotErrors("extern /*@unique@*/ char *g;"), 1u);
}

TEST(SemaTest, UniqueOnParameterAccepted) {
  EXPECT_EQ(annotErrors("extern void f(/*@unique@*/ char *p);"), 0u);
}

TEST(SemaTest, ReturnedOnGlobalRejected) {
  EXPECT_GE(annotErrors("extern /*@returned@*/ char *g;"), 1u);
}

TEST(SemaTest, UndefOnParameterRejected) {
  EXPECT_GE(annotErrors("extern void f(/*@undef@*/ char *p);"), 1u);
}

TEST(SemaTest, UndefOnGlobalAccepted) {
  EXPECT_EQ(annotErrors("extern /*@undef@*/ int g;"), 0u);
}

TEST(SemaTest, TrueNullRequiresPointerParam) {
  EXPECT_GE(annotErrors("extern /*@truenull@*/ int odd(int x);"), 1u);
  EXPECT_EQ(
      annotErrors("extern /*@truenull@*/ int isNull(/*@null@*/ char *p);"),
      0u);
}

TEST(SemaTest, TrueNullOnParameterRejected) {
  EXPECT_GE(annotErrors("extern void f(/*@truenull@*/ char *p);"), 1u);
}

TEST(SemaTest, NullOnNonPointerRejected) {
  EXPECT_GE(annotErrors("extern /*@null@*/ int g;"), 1u);
}

TEST(SemaTest, NullOnPointerAccepted) {
  EXPECT_EQ(annotErrors("extern /*@null@*/ int *g;"), 0u);
}

TEST(SemaTest, ConflictingCategoryViaParser) {
  // Conflicts within one declaration are reported when parsed.
  EXPECT_GE(annotErrors("extern /*@null@*/ /*@notnull@*/ char *g;"), 1u);
  EXPECT_GE(annotErrors("extern void f(/*@only@*/ /*@temp@*/ char *p);"),
            1u);
}

TEST(SemaTest, ObserverOnlyConflict) {
  EXPECT_GE(annotErrors(
                "extern /*@observer@*/ /*@only@*/ char *peek(void);"),
            1u);
}

TEST(SemaTest, LocalAnnotationsValidated) {
  EXPECT_GE(annotErrors("void f(void) { /*@unique@*/ char *p; p = NULL; }"),
            1u);
}

TEST(SemaTest, FieldAnnotationsAccepted) {
  EXPECT_EQ(annotErrors("struct s { /*@null@*/ /*@only@*/ char *p; };"),
            0u);
}

} // namespace
