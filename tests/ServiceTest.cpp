//===--- ServiceTest.cpp - Persistent check service ----------------------------===//
//
// Part of memlint. See DESIGN.md §6f.
//
// The check service's contract: warm answers are byte-identical to cold
// answers; editing one file invalidates exactly the entries that read it;
// a policy change (flags, library version) discards the whole cache; any
// damaged entry (CRC, torn write, stale key) degrades to a cold re-check,
// never to wrong or missing diagnostics; and an overloaded service sheds
// deterministically instead of hanging.
//
//===----------------------------------------------------------------------===//

#include "service/CheckService.h"
#include "service/ResultCache.h"
#include "service/ServiceSocket.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

using namespace memlint;

namespace {

/// A unique temp path per test; removed on destruction.
class TempPath {
public:
  explicit TempPath(const std::string &Stem) {
    Path = ::testing::TempDir() + "/" + Stem;
    std::remove(Path.c_str());
  }
  ~TempPath() { std::remove(Path.c_str()); }
  const std::string &str() const { return Path; }

private:
  std::string Path;
};

/// An in-memory "disk" the service reads through, so tests can edit files
/// between requests.
using Disk = std::map<std::string, std::string>;

ServiceOptions optionsOver(Disk &Files) {
  ServiceOptions O;
  O.FileSource = [&Files](const std::string &Name)
      -> std::optional<std::string> {
    auto It = Files.find(Name);
    if (It == Files.end())
      return std::nullopt;
    return It->second;
  };
  return O;
}

/// Three modules, each a .c including its own .h; m1.c leaks.
Disk threeModules() {
  Disk D;
  D["m0.h"] = "int f0(int x);\n";
  D["m0.c"] = "#include \"m0.h\"\nint f0(int x) { return x + 1; }\n";
  D["m1.h"] = "#include <stdlib.h>\nvoid f1(void);\n";
  D["m1.c"] = "#include \"m1.h\"\n"
              "void f1(void) { char *p = (char *)malloc(10); }\n";
  D["m2.h"] = "int f2(int x);\n";
  D["m2.c"] = "#include \"m2.h\"\nint f2(int x) { return x * 2; }\n";
  return D;
}

ServiceRequest checkReq(const std::string &File) {
  ServiceRequest R;
  R.Kind = ServiceRequestKind::Check;
  R.File = File;
  return R;
}

unsigned long long counter(const MetricsSnapshot &S, const std::string &K) {
  auto It = S.Counters.find(K);
  return It == S.Counters.end() ? 0 : It->second;
}

CacheEntry sampleEntry() {
  CacheEntry E;
  E.File = "a.c";
  E.ContentHash = fnv1aHex({"int f(void) { return 0; }\n"});
  E.Deps["a.c"] = E.ContentHash;
  E.Status = "ok";
  E.Anomalies = 1;
  E.Suppressed = 2;
  E.Diagnostics = "a.c:1: warning: \"quoted\" text\n";
  E.Classes["mustfree"] = 1;
  E.Metrics.Counters["check.functions"] = 1;
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire codec
//===----------------------------------------------------------------------===//

TEST(ServiceCodec, RequestRoundTripAllKinds) {
  for (ServiceRequestKind Kind :
       {ServiceRequestKind::Check, ServiceRequestKind::Invalidate,
        ServiceRequestKind::Stats, ServiceRequestKind::Shutdown}) {
    ServiceRequest In;
    In.Kind = Kind;
    if (Kind == ServiceRequestKind::Check ||
        Kind == ServiceRequestKind::Invalidate)
      In.File = "dir/weird \"name\".c";
    ServiceRequest Out;
    ASSERT_TRUE(parseServiceRequestLine(serviceRequestLine(In), Out));
    EXPECT_EQ(Out.Kind, In.Kind);
    EXPECT_EQ(Out.File, In.File);
  }
}

TEST(ServiceCodec, ReplyRoundTripPreservesDiagnosticsBytes) {
  ServiceReply In;
  In.Status = "degraded";
  In.CacheHit = true;
  In.Anomalies = 7;
  In.Suppressed = 3;
  In.Diagnostics = "a.c:1: null deref\n\twith \"tab\" and \\ backslash\n";
  In.Note = "limittokens";
  ServiceReply Out;
  ASSERT_TRUE(parseServiceReplyLine(serviceReplyLine(In), Out));
  EXPECT_EQ(Out.Status, In.Status);
  EXPECT_TRUE(Out.CacheHit);
  EXPECT_EQ(Out.Anomalies, In.Anomalies);
  EXPECT_EQ(Out.Suppressed, In.Suppressed);
  EXPECT_EQ(Out.Diagnostics, In.Diagnostics);
  EXPECT_EQ(Out.Note, In.Note);
}

TEST(ServiceCodec, MalformedLinesRejected) {
  ServiceRequest Req;
  EXPECT_FALSE(parseServiceRequestLine("", Req));
  EXPECT_FALSE(parseServiceRequestLine("not json", Req));
  EXPECT_FALSE(parseServiceRequestLine("{\"op\":\"fry\"}", Req));
  EXPECT_FALSE(parseServiceRequestLine("{\"file\":\"a.c\"}", Req));
  ServiceReply Reply;
  EXPECT_FALSE(parseServiceReplyLine("{\"cache_hit\":1}", Reply));
  EXPECT_FALSE(parseServiceReplyLine("{\"status\":\"ok\"", Reply));
}

//===----------------------------------------------------------------------===//
// Cache entry format: CRC, torn writes, stale keys
//===----------------------------------------------------------------------===//

TEST(ResultCacheFormat, EntryLineRoundTrips) {
  CacheEntry E = sampleEntry();
  CacheEntry Out;
  ASSERT_TRUE(ResultCache::parseEntryLine(ResultCache::entryLine(E), Out));
  EXPECT_EQ(Out.File, E.File);
  EXPECT_EQ(Out.ContentHash, E.ContentHash);
  EXPECT_EQ(Out.Deps, E.Deps);
  EXPECT_EQ(Out.Status, E.Status);
  EXPECT_EQ(Out.Anomalies, E.Anomalies);
  EXPECT_EQ(Out.Suppressed, E.Suppressed);
  EXPECT_EQ(Out.Diagnostics, E.Diagnostics);
  EXPECT_EQ(Out.Classes, E.Classes);
  EXPECT_EQ(Out.Metrics.Counters, E.Metrics.Counters);
}

TEST(ResultCacheFormat, EveryByteFlipIsCaught) {
  // The CRC covers the whole payload: flipping any single byte of the
  // line must make the entry unparsable (or, in the crc field itself,
  // fail verification). No flip may yield a *different* parsed entry.
  CacheEntry E = sampleEntry();
  const std::string Line = ResultCache::entryLine(E);
  for (size_t I = 0; I < Line.size(); ++I) {
    std::string Bad = Line;
    Bad[I] ^= 0x20;
    CacheEntry Out;
    EXPECT_FALSE(ResultCache::parseEntryLine(Bad, Out))
        << "flip at " << I << " survived: " << Bad;
  }
}

TEST(ResultCacheFormat, CacheCorruptFaultBreaksCrc) {
  FaultInjector F(FaultKind::CacheCorrupt, 0);
  const std::string Line =
      ResultCache::entryLineFaulted(sampleEntry(), &F);
  EXPECT_TRUE(F.fired());
  CacheEntry Out;
  EXPECT_FALSE(ResultCache::parseEntryLine(Line, Out));
}

TEST(ResultCacheFormat, CacheTornWriteFaultTruncates) {
  FaultInjector F(FaultKind::CacheTornWrite, 0);
  const std::string Whole = ResultCache::entryLine(sampleEntry());
  const std::string Line =
      ResultCache::entryLineFaulted(sampleEntry(), &F);
  EXPECT_TRUE(F.fired());
  EXPECT_LT(Line.size(), Whole.size());
  CacheEntry Out;
  EXPECT_FALSE(ResultCache::parseEntryLine(Line, Out));
}

TEST(ResultCacheFormat, StaleEntryFaultSurvivesCrcButMissesLookup) {
  // StaleEntry rewrites the content hash *before* the CRC is stamped: the
  // line is formally valid, so only the lookup's key check can catch it.
  CacheEntry E = sampleEntry();
  FaultInjector F(FaultKind::StaleEntry, 0);
  const std::string Line = ResultCache::entryLineFaulted(E, &F);
  EXPECT_TRUE(F.fired());
  CacheEntry Out;
  ASSERT_TRUE(ResultCache::parseEntryLine(Line, Out));
  EXPECT_NE(Out.ContentHash, E.ContentHash);

  ResultCache Cache("policy");
  ASSERT_TRUE(Cache.loadFromText(ResultCache::headerLine("policy") + "\n" +
                                 Line + "\n"));
  ASSERT_EQ(Cache.size(), 1u);
  const CacheEntry *Hit = Cache.lookup(
      E.File, [&E](const std::string &) -> std::optional<std::string> {
        return E.ContentHash; // the real, current hash
      });
  EXPECT_EQ(Hit, nullptr);
  EXPECT_EQ(Cache.stats().StaleDropped, 1u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(ResultCacheFormat, WrongPolicyOrFormatDiscardsWholeFile) {
  const std::string Entry = ResultCache::entryLine(sampleEntry());
  ResultCache Wrong("other-policy");
  EXPECT_FALSE(Wrong.loadFromText(ResultCache::headerLine("policy") + "\n" +
                                  Entry + "\n"));
  EXPECT_EQ(Wrong.size(), 0u);
  ResultCache NoHeader("policy");
  EXPECT_FALSE(NoHeader.loadFromText(Entry + "\n"));
  EXPECT_EQ(NoHeader.size(), 0u);
}

TEST(ResultCacheFormat, LruEvictionIsBounded) {
  ResultCache Cache("policy", 2);
  for (int I = 0; I < 4; ++I) {
    CacheEntry E = sampleEntry();
    E.File = "f" + std::to_string(I) + ".c";
    Cache.store(std::move(E));
  }
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.stats().Evictions, 2u);
}

//===----------------------------------------------------------------------===//
// The service: incremental reuse and invalidation (S3)
//===----------------------------------------------------------------------===//

TEST(CheckService, EditingOneModuleRecomputesOnlyThatModule) {
  Disk D = threeModules();
  CheckService Service(optionsOver(D));

  // Cold pass: everything misses.
  std::map<std::string, ServiceReply> Cold;
  for (const char *F : {"m0.c", "m1.c", "m2.c"}) {
    Cold[F] = Service.handle(checkReq(F));
    EXPECT_FALSE(Cold[F].CacheHit) << F;
  }
  EXPECT_EQ(Cold["m1.c"].Anomalies, 1u); // the leak
  EXPECT_EQ(Cold["m0.c"].Anomalies, 0u);

  // Warm pass: everything hits, byte-identical.
  for (const char *F : {"m0.c", "m1.c", "m2.c"}) {
    ServiceReply Warm = Service.handle(checkReq(F));
    EXPECT_TRUE(Warm.CacheHit) << F;
    EXPECT_EQ(Warm.Diagnostics, Cold[F].Diagnostics) << F;
    EXPECT_EQ(Warm.Status, Cold[F].Status) << F;
    EXPECT_EQ(Warm.Anomalies, Cold[F].Anomalies) << F;
  }

  // Fix m1's leak; only m1.c may recompute.
  D["m1.c"] = "#include \"m1.h\"\n"
              "void f1(void) { char *p = (char *)malloc(10); free(p); }\n";
  ServiceReply M1 = Service.handle(checkReq("m1.c"));
  EXPECT_FALSE(M1.CacheHit);
  EXPECT_EQ(M1.Anomalies, 0u);
  EXPECT_TRUE(Service.handle(checkReq("m0.c")).CacheHit);
  EXPECT_TRUE(Service.handle(checkReq("m2.c")).CacheHit);

  MetricsSnapshot M = Service.metrics();
  EXPECT_EQ(counter(M, "service.cold_checks"), 4u); // 3 cold + 1 re-check
  EXPECT_EQ(counter(M, "cache.stale_dropped"), 1u);
  EXPECT_EQ(counter(M, "service.requests"), 9u);
}

TEST(CheckService, EditingASharedHeaderInvalidatesItsIncluder) {
  Disk D = threeModules();
  CheckService Service(optionsOver(D));
  Service.handle(checkReq("m0.c"));
  Service.handle(checkReq("m2.c"));

  // m0.h is in m0.c's include closure, not m2.c's.
  D["m0.h"] = "int f0(int x); /* edited */\n";
  EXPECT_FALSE(Service.handle(checkReq("m0.c")).CacheHit);
  EXPECT_TRUE(Service.handle(checkReq("m2.c")).CacheHit);
}

TEST(CheckService, InvalidateDropsExactlyThatEntry) {
  Disk D = threeModules();
  CheckService Service(optionsOver(D));
  Service.handle(checkReq("m0.c"));
  Service.handle(checkReq("m2.c"));

  ServiceRequest Inv;
  Inv.Kind = ServiceRequestKind::Invalidate;
  Inv.File = "m0.c";
  EXPECT_EQ(Service.handle(Inv).Status, "invalidated");
  EXPECT_EQ(Service.handle(Inv).Status, "absent"); // second time: gone

  EXPECT_FALSE(Service.handle(checkReq("m0.c")).CacheHit);
  EXPECT_TRUE(Service.handle(checkReq("m2.c")).CacheHit);
}

TEST(CheckService, MissingFileIsAnErrorNotACrash) {
  Disk D;
  CheckService Service(optionsOver(D));
  ServiceReply R = Service.handle(checkReq("ghost.c"));
  EXPECT_EQ(R.Status, "error");
  EXPECT_NE(R.Note.find("ghost.c"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Persistence: restart, policy change, corruption recovery (S3)
//===----------------------------------------------------------------------===//

TEST(CheckService, RestartServesPersistedResultsByteIdentical) {
  Disk D = threeModules();
  TempPath Cache("svc_restart.cache.jsonl");
  ServiceOptions O = optionsOver(D);
  O.CachePath = Cache.str();

  ServiceReply Cold;
  {
    CheckService Service(O);
    EXPECT_TRUE(Service.cacheLoadedClean());
    Cold = Service.handle(checkReq("m1.c"));
    EXPECT_FALSE(Cold.CacheHit);
    Service.stop(); // graceful: compacted flush
  }
  {
    CheckService Service(O);
    EXPECT_TRUE(Service.cacheLoadedClean());
    ServiceReply Warm = Service.handle(checkReq("m1.c"));
    EXPECT_TRUE(Warm.CacheHit);
    EXPECT_EQ(Warm.Diagnostics, Cold.Diagnostics);
    EXPECT_EQ(Warm.Status, Cold.Status);
    EXPECT_EQ(Warm.Anomalies, Cold.Anomalies);
    EXPECT_EQ(Warm.Suppressed, Cold.Suppressed);
  }
}

TEST(CheckService, PolicyChangeDiscardsThePersistedCache) {
  Disk D = threeModules();
  TempPath Cache("svc_policy.cache.jsonl");
  ServiceOptions O = optionsOver(D);
  O.CachePath = Cache.str();
  {
    CheckService Service(O);
    Service.handle(checkReq("m0.c"));
    Service.stop();
  }
  // Same cache file, different checking policy: the persisted entries
  // were computed under other flags and must not be served.
  ServiceOptions Changed = optionsOver(D);
  Changed.CachePath = Cache.str();
  Changed.Check.Flags.limits().MaxTokens = 123;
  {
    CheckService Service(Changed);
    EXPECT_FALSE(Service.cacheLoadedClean());
    EXPECT_FALSE(Service.handle(checkReq("m0.c")).CacheHit);
    Service.stop();
  }
  // And back under the original policy: the file now records the changed
  // policy, so the original must also start cold — never serve across.
  {
    CheckService Service(O);
    EXPECT_FALSE(Service.cacheLoadedClean());
    EXPECT_FALSE(Service.handle(checkReq("m0.c")).CacheHit);
  }
}

TEST(CheckService, CorruptEntryFallsBackColdWithIdenticalDiagnostics) {
  Disk D = threeModules();
  TempPath Cache("svc_corrupt.cache.jsonl");
  ServiceOptions O = optionsOver(D);
  O.CachePath = Cache.str();

  ServiceReply Cold;
  {
    CheckService Service(O);
    Cold = Service.handle(checkReq("m1.c"));
    Service.handle(checkReq("m2.c"));
    Service.stop();
  }

  // Rot one byte inside m1.c's persisted entry (past the CRC stamp time).
  std::optional<std::string> Text = readFileText(Cache.str());
  ASSERT_TRUE(Text);
  size_t At = Text->find("m1.c");
  ASSERT_NE(At, std::string::npos);
  (*Text)[At] = 'X';
  ASSERT_TRUE(writeFileText(Cache.str(), *Text));

  {
    CheckService Service(O);
    EXPECT_TRUE(Service.cacheLoadedClean()); // header fine; entry dropped
    ServiceReply Re = Service.handle(checkReq("m1.c"));
    EXPECT_FALSE(Re.CacheHit); // cold fallback, not a wrong answer
    EXPECT_EQ(Re.Diagnostics, Cold.Diagnostics);
    EXPECT_EQ(Re.Anomalies, Cold.Anomalies);
    EXPECT_TRUE(Service.handle(checkReq("m2.c")).CacheHit); // undamaged
    MetricsSnapshot M = Service.metrics();
    EXPECT_GE(counter(M, "cache.corrupt_recovered"), 1u);
  }
}

TEST(CheckService, TornTailIsTruncatedOnAttach) {
  Disk D = threeModules();
  TempPath Cache("svc_torn.cache.jsonl");
  ServiceOptions O = optionsOver(D);
  O.CachePath = Cache.str();
  {
    CheckService Service(O);
    Service.handle(checkReq("m0.c"));
    Service.stop();
  }
  // Simulate kill -9 mid-append: a half-written line at the tail.
  std::optional<std::string> Text = readFileText(Cache.str());
  ASSERT_TRUE(Text);
  ASSERT_TRUE(writeFileText(Cache.str(),
                            *Text + "{\"file\":\"m9.c\",\"content\":\"12"));
  {
    CheckService Service(O);
    EXPECT_TRUE(Service.cacheLoadedClean());
    EXPECT_TRUE(Service.handle(checkReq("m0.c")).CacheHit);
  }
  // attachFile compacts immediately: the torn bytes are gone from disk.
  Text = readFileText(Cache.str());
  ASSERT_TRUE(Text);
  EXPECT_EQ(Text->find("m9.c"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Queueing: deterministic shedding, graceful drain
//===----------------------------------------------------------------------===//

TEST(CheckService, OverloadShedsDeterministically) {
  // Gate the first cold check inside FileSource (called without the
  // service lock) so the worker is provably busy while we fill the queue.
  std::mutex GateMu;
  std::condition_variable GateCv;
  bool InCheck = false, Release = false;

  ServiceOptions O;
  O.QueueLimit = 1;
  O.FileSource =
      [&](const std::string &) -> std::optional<std::string> {
    {
      std::unique_lock<std::mutex> Lock(GateMu);
      InCheck = true;
      GateCv.notify_all();
      GateCv.wait(Lock, [&] { return Release; });
    }
    return "int f(void) { return 0; }\n";
  };

  CheckService Service(O);
  std::atomic<unsigned> Completed{0};
  auto Count = [&Completed](const ServiceReply &) { ++Completed; };

  ASSERT_TRUE(Service.submit(checkReq("a.c"), Count));
  {
    std::unique_lock<std::mutex> Lock(GateMu);
    GateCv.wait(Lock, [&] { return InCheck; }); // worker holds a.c now
  }
  ASSERT_TRUE(Service.submit(checkReq("b.c"), Count)); // fills the queue

  ServiceReply Shed;
  EXPECT_FALSE(Service.submit(checkReq("c.c"),
                              [&Shed](const ServiceReply &R) { Shed = R; }));
  EXPECT_EQ(Shed.Status, "overloaded");
  EXPECT_NE(Shed.Note.find("retry later"), std::string::npos);

  {
    std::lock_guard<std::mutex> Lock(GateMu);
    Release = true;
  }
  GateCv.notify_all();
  Service.stop(); // graceful drain: a.c and b.c still complete
  EXPECT_EQ(Completed.load(), 2u);
  EXPECT_EQ(counter(Service.metrics(), "service.shed_requests"), 1u);
}

TEST(CheckService, SubmitAfterStopIsShedAsStopping) {
  Disk D = threeModules();
  CheckService Service(optionsOver(D));
  Service.stop();
  ServiceReply Shed;
  EXPECT_FALSE(Service.submit(checkReq("m0.c"),
                              [&Shed](const ServiceReply &R) { Shed = R; }));
  EXPECT_EQ(Shed.Status, "stopping");
}

//===----------------------------------------------------------------------===//
// Counter identity across cold and warm runs (S6)
//===----------------------------------------------------------------------===//

TEST(CheckService, WarmRunFoldsIdenticalCheckCountersToColdRun) {
  Disk D = threeModules();
  TempPath Cache("svc_counters.cache.jsonl");
  ServiceOptions O = optionsOver(D);
  O.CachePath = Cache.str();
  O.CollectMetrics = true;

  MetricsSnapshot Cold, Warm;
  {
    CheckService Service(O);
    for (const char *F : {"m0.c", "m1.c", "m2.c"})
      Service.handle(checkReq(F));
    Service.stop();
    Cold = Service.metrics();
  }
  {
    CheckService Service(O);
    for (const char *F : {"m0.c", "m1.c", "m2.c"})
      EXPECT_TRUE(Service.handle(checkReq(F)).CacheHit) << F;
    Service.stop();
    Warm = Service.metrics();
  }

  EXPECT_EQ(counter(Cold, "service.cold_checks"), 3u);
  EXPECT_EQ(counter(Warm, "service.cold_checks"), 0u);
  EXPECT_EQ(counter(Warm, "cache.hits"), 3u);
  EXPECT_EQ(counter(Cold, "service.requests"),
            counter(Warm, "service.requests"));

  // Identity: a hit folds the producing run's metrics, so everything that
  // is not a service./cache. counter — the per-check work accounting —
  // must be *equal*, not merely close, between the two runs.
  auto IsServiceSide = [](const std::string &Key) {
    return Key.compare(0, 8, "service.") == 0 ||
           Key.compare(0, 6, "cache.") == 0;
  };
  for (const auto &[Key, Value] : Cold.Counters)
    if (!IsServiceSide(Key))
      EXPECT_EQ(counter(Warm, Key), Value) << Key;
  for (const auto &[Key, Value] : Warm.Counters)
    if (!IsServiceSide(Key))
      EXPECT_EQ(counter(Cold, Key), Value) << Key;
  // The stored snapshots carry the producing run's timers too; the JSON
  // round trip renders ms at two decimals, so the replay matches to
  // rounding (3 folded entries => at most 3 * 0.005 drift per timer).
  ASSERT_EQ(Cold.TimersMs.size(), Warm.TimersMs.size());
  for (const auto &[Key, Ms] : Cold.TimersMs) {
    ASSERT_TRUE(Warm.TimersMs.count(Key)) << Key;
    EXPECT_NEAR(Warm.TimersMs.at(Key), Ms, 0.02) << Key;
  }
  EXPECT_GT(Cold.Counters.size(), 3u); // per-check metrics actually folded
}

//===----------------------------------------------------------------------===//
// Socket front end
//===----------------------------------------------------------------------===//

TEST(ServiceSocket, RoundTripWarmAndColdThenShutdown) {
  Disk D = threeModules();
  CheckService Service(optionsOver(D));
  ServiceSocket Socket;
  TempPath Sock("svc_rt.sock");
  std::string Error;
  ASSERT_TRUE(Socket.listenOn(Sock.str(), Error)) << Error;

  std::atomic<bool> Stop{false};
  std::thread Server([&] { Socket.serve(Service, Stop); });

  auto RoundTrip = [&](const ServiceRequest &Req) {
    std::string Err;
    std::optional<std::string> Line =
        serviceRoundTrip(Sock.str(), serviceRequestLine(Req), Err);
    EXPECT_TRUE(Line) << Err;
    ServiceReply R;
    EXPECT_TRUE(parseServiceReplyLine(Line ? *Line : "", R));
    return R;
  };

  ServiceReply Cold = RoundTrip(checkReq("m1.c"));
  EXPECT_EQ(Cold.Status, "ok");
  EXPECT_EQ(Cold.Anomalies, 1u); // the leak
  EXPECT_FALSE(Cold.CacheHit);
  ServiceReply Warm = RoundTrip(checkReq("m1.c"));
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.Diagnostics, Cold.Diagnostics);

  // A malformed request line gets an explicit error reply, not a hang.
  std::string Err;
  std::optional<std::string> Bad =
      serviceRoundTrip(Sock.str(), "this is not json", Err);
  ASSERT_TRUE(Bad) << Err;
  ServiceReply BadReply;
  ASSERT_TRUE(parseServiceReplyLine(*Bad, BadReply));
  EXPECT_EQ(BadReply.Status, "error");

  ServiceRequest Down;
  Down.Kind = ServiceRequestKind::Shutdown;
  EXPECT_EQ(RoundTrip(Down).Status, "stopping");
  Server.join(); // serve() exits once the service reports stopping
  Socket.close();
}
