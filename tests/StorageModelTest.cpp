//===--- StorageModelTest.cpp - Merge-rule unit & property tests --------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/StorageModel.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

const DefState AllDefs[] = {
    DefState::Undefined, DefState::Allocated, DefState::PartiallyDefined,
    DefState::Defined,   DefState::Dead,      DefState::Error,
};

const NullState AllNulls[] = {
    NullState::NotNull, NullState::PossiblyNull, NullState::DefinitelyNull,
    NullState::RelNull, NullState::Unknown,      NullState::Error,
};

const AllocState AllAllocs[] = {
    AllocState::Unqualified, AllocState::Only,     AllocState::Fresh,
    AllocState::Keep,        AllocState::Kept,     AllocState::Temp,
    AllocState::Owned,       AllocState::Dependent, AllocState::Shared,
    AllocState::Observer,    AllocState::Exposed,  AllocState::Static,
    AllocState::Stack,       AllocState::Offset,   AllocState::Null,
    AllocState::Error,
};

//===--- specific paper rules -----------------------------------------------===//

TEST(StorageModelTest, DefMergeWeakestWins) {
  bool C = false;
  // "Definition states are combined using the weakest assumption. Hence, at
  // point 10 ... l->next->next is undefined."
  EXPECT_EQ(mergeDef(DefState::Undefined, DefState::Defined, C),
            DefState::Undefined);
  EXPECT_FALSE(C);
  EXPECT_EQ(mergeDef(DefState::PartiallyDefined, DefState::Defined, C),
            DefState::PartiallyDefined);
  EXPECT_EQ(mergeDef(DefState::Allocated, DefState::PartiallyDefined, C),
            DefState::Allocated);
}

TEST(StorageModelTest, DefMergeDeadVsLiveConflicts) {
  // "if storage is deallocated on only one of the paths through an if
  // statement" an error is reported.
  bool C = false;
  EXPECT_EQ(mergeDef(DefState::Dead, DefState::Defined, C), DefState::Error);
  EXPECT_TRUE(C);
  C = false;
  EXPECT_EQ(mergeDef(DefState::Dead, DefState::Dead, C), DefState::Dead);
  EXPECT_FALSE(C);
}

TEST(StorageModelTest, NullMergeMostUncertain) {
  EXPECT_EQ(mergeNull(NullState::NotNull, NullState::DefinitelyNull),
            NullState::PossiblyNull);
  EXPECT_EQ(mergeNull(NullState::NotNull, NullState::PossiblyNull),
            NullState::PossiblyNull);
  EXPECT_EQ(mergeNull(NullState::Unknown, NullState::NotNull),
            NullState::NotNull);
  EXPECT_EQ(mergeNull(NullState::RelNull, NullState::NotNull),
            NullState::RelNull);
}

TEST(StorageModelTest, AllocMergeKeptVsOnlyConflicts) {
  // The Figure 5 confluence: "one means the storage must be released, and
  // the other means it must not be released."
  bool C = false;
  EXPECT_EQ(mergeAlloc(AllocState::Kept, AllocState::Only, C),
            AllocState::Error);
  EXPECT_TRUE(C);
}

TEST(StorageModelTest, AllocMergeObligationClassCompatible) {
  bool C = false;
  EXPECT_EQ(mergeAlloc(AllocState::Only, AllocState::Fresh, C),
            AllocState::Only);
  EXPECT_FALSE(C);
  EXPECT_EQ(mergeAlloc(AllocState::Temp, AllocState::Kept, C),
            AllocState::Temp);
  EXPECT_FALSE(C);
}

TEST(StorageModelTest, AllocMergeUnqualifiedIsIdentity) {
  bool C = false;
  for (AllocState S : AllAllocs) {
    C = false;
    EXPECT_EQ(mergeAlloc(AllocState::Unqualified, S, C), S);
    EXPECT_FALSE(C) << allocStateName(S);
  }
}

TEST(StorageModelTest, NullAllocHasNoObligation) {
  bool C = false;
  EXPECT_EQ(mergeAlloc(AllocState::Null, AllocState::Only, C),
            AllocState::Only);
  EXPECT_FALSE(C);
}

TEST(StorageModelTest, ObligationPredicates) {
  EXPECT_TRUE(holdsObligation(AllocState::Only));
  EXPECT_TRUE(holdsObligation(AllocState::Fresh));
  EXPECT_TRUE(holdsObligation(AllocState::Owned));
  EXPECT_TRUE(holdsObligation(AllocState::Keep));
  EXPECT_FALSE(holdsObligation(AllocState::Temp));
  EXPECT_FALSE(holdsObligation(AllocState::Kept));
  EXPECT_FALSE(holdsObligation(AllocState::Shared));
  EXPECT_TRUE(isUnreleasable(AllocState::Shared));
  EXPECT_TRUE(isUnreleasable(AllocState::Observer));
  EXPECT_TRUE(isUnreleasable(AllocState::Static));
  EXPECT_FALSE(isUnreleasable(AllocState::Only));
}

TEST(StorageModelTest, Names) {
  EXPECT_STREQ(defStateName(DefState::PartiallyDefined),
               "partially defined");
  EXPECT_STREQ(nullStateName(NullState::PossiblyNull), "possibly null");
  EXPECT_STREQ(allocStateName(AllocState::Only), "only");
  SVal V;
  V.Def = DefState::Defined;
  V.Null = NullState::NotNull;
  V.Alloc = AllocState::Temp;
  EXPECT_EQ(V.str(), "defined/not null/temp");
}

//===--- algebraic property sweeps --------------------------------------------===//

class DefMergePairTest
    : public ::testing::TestWithParam<std::tuple<DefState, DefState>> {};

TEST_P(DefMergePairTest, CommutativeAndIdempotent) {
  auto [A, B] = GetParam();
  bool C1 = false, C2 = false;
  EXPECT_EQ(mergeDef(A, B, C1), mergeDef(B, A, C2));
  EXPECT_EQ(C1, C2);
  bool C3 = false;
  EXPECT_EQ(mergeDef(A, A, C3), A);
  EXPECT_FALSE(C3);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, DefMergePairTest,
                         ::testing::Combine(::testing::ValuesIn(AllDefs),
                                            ::testing::ValuesIn(AllDefs)));

class NullMergePairTest
    : public ::testing::TestWithParam<std::tuple<NullState, NullState>> {};

TEST_P(NullMergePairTest, CommutativeAndIdempotent) {
  auto [A, B] = GetParam();
  EXPECT_EQ(mergeNull(A, B), mergeNull(B, A));
  EXPECT_EQ(mergeNull(A, A), A);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, NullMergePairTest,
                         ::testing::Combine(::testing::ValuesIn(AllNulls),
                                            ::testing::ValuesIn(AllNulls)));

class AllocMergePairTest
    : public ::testing::TestWithParam<std::tuple<AllocState, AllocState>> {};

TEST_P(AllocMergePairTest, CommutativeAndIdempotent) {
  auto [A, B] = GetParam();
  bool C1 = false, C2 = false;
  EXPECT_EQ(mergeAlloc(A, B, C1), mergeAlloc(B, A, C2));
  EXPECT_EQ(C1, C2);
  bool C3 = false;
  EXPECT_EQ(mergeAlloc(A, A, C3), A);
  EXPECT_FALSE(C3);
}

TEST_P(AllocMergePairTest, ConflictIffObligationDisagrees) {
  auto [A, B] = GetParam();
  bool Conflict = false;
  mergeAlloc(A, B, Conflict);
  if (A == AllocState::Error || B == AllocState::Error ||
      A == AllocState::Unqualified || B == AllocState::Unqualified ||
      A == AllocState::Null || B == AllocState::Null) {
    EXPECT_FALSE(Conflict);
    return;
  }
  EXPECT_EQ(Conflict, holdsObligation(A) != holdsObligation(B));
}

INSTANTIATE_TEST_SUITE_P(AllPairs, AllocMergePairTest,
                         ::testing::Combine(::testing::ValuesIn(AllAllocs),
                                            ::testing::ValuesIn(AllAllocs)));

} // namespace
