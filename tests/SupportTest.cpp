//===--- SupportTest.cpp - Diagnostics, VFS, locations, printing ---------------===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "checker/Frontend.h"
#include "support/Diagnostics.h"
#include "support/VFS.h"

#include <gtest/gtest.h>

using namespace memlint;

namespace {

//===--- SourceLocation --------------------------------------------------------===//

TEST(SourceLocationTest, ValidityAndRendering) {
  SourceLocation Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(Invalid.str(), "<unknown>");

  SourceLocation Loc("x.c", 12, 3);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "x.c:12");
  EXPECT_EQ(Loc.column(), 3u);
}

TEST(SourceLocationTest, Equality) {
  SourceLocation A("x.c", 1, 1);
  SourceLocation B("x.c", 1, 1);
  SourceLocation C("x.c", 2, 1);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

//===--- DiagnosticEngine ------------------------------------------------------===//

TEST(DiagnosticsTest, ReportAndRender) {
  DiagnosticEngine Engine;
  Engine.report(CheckId::NullDeref, SourceLocation("a.c", 5, 1),
                "Dereference of possibly null pointer p")
      .note(SourceLocation("a.c", 3, 1), "Storage p may become null");
  ASSERT_EQ(Engine.diagnostics().size(), 1u);
  EXPECT_EQ(Engine.diagnostics()[0].str(),
            "a.c:5: Dereference of possibly null pointer p\n"
            "   a.c:3: Storage p may become null");
}

TEST(DiagnosticsTest, CountByCheckId) {
  DiagnosticEngine Engine;
  Engine.report(CheckId::MustFree, SourceLocation("a.c", 1, 1), "one");
  Engine.report(CheckId::MustFree, SourceLocation("a.c", 2, 1), "two");
  Engine.report(CheckId::NullDeref, SourceLocation("a.c", 3, 1), "three");
  EXPECT_EQ(Engine.count(CheckId::MustFree), 2u);
  EXPECT_EQ(Engine.count(CheckId::NullDeref), 1u);
  EXPECT_EQ(Engine.count(CheckId::Observer), 0u);
}

TEST(DiagnosticsTest, FilterSuppresses) {
  DiagnosticEngine Engine;
  Engine.setFilter(
      [](const Diagnostic &D) { return D.Id != CheckId::MustFree; });
  Engine.report(CheckId::MustFree, SourceLocation("a.c", 1, 1), "hidden");
  Engine.report(CheckId::NullDeref, SourceLocation("a.c", 2, 1), "kept");
  EXPECT_EQ(Engine.diagnostics().size(), 1u);
  EXPECT_EQ(Engine.suppressedCount(), 1u);
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine Engine;
  Engine.report(CheckId::NullDeref, SourceLocation("a.c", 1, 1), "x");
  Engine.clear();
  EXPECT_TRUE(Engine.empty());
  EXPECT_EQ(Engine.suppressedCount(), 0u);
}

TEST(DiagnosticsTest, EveryCheckIdHasFlagName) {
  const CheckId All[] = {
      CheckId::ParseError,     CheckId::AnnotationError,
      CheckId::NullDeref,      CheckId::NullPass,
      CheckId::NullReturn,     CheckId::UseUndefined,
      CheckId::CompleteDefine, CheckId::MustFree,
      CheckId::UseReleased,    CheckId::DoubleFree,
      CheckId::AliasTransfer,  CheckId::BranchState,
      CheckId::UniqueAlias,    CheckId::Observer,
      CheckId::GlobalState,    CheckId::InterfaceDefine,
  };
  std::set<std::string> Names;
  for (CheckId Id : All) {
    const char *Name = checkIdFlagName(Id);
    ASSERT_NE(Name, nullptr);
    EXPECT_TRUE(Names.insert(Name).second) << Name << " duplicated";
  }
}

//===--- VFS -------------------------------------------------------------------===//

TEST(VfsTest, AddReadExists) {
  VFS Files;
  EXPECT_FALSE(Files.exists("a.c"));
  Files.add("a.c", "int x;");
  EXPECT_TRUE(Files.exists("a.c"));
  EXPECT_EQ(*Files.read("a.c"), "int x;");
  EXPECT_FALSE(Files.read("b.c").has_value());
}

TEST(VfsTest, Replace) {
  VFS Files;
  Files.add("a.c", "old");
  Files.add("a.c", "new");
  EXPECT_EQ(*Files.read("a.c"), "new");
}

TEST(VfsTest, NamesSorted) {
  VFS Files;
  Files.add("z.c", "");
  Files.add("a.c", "");
  Files.add("m.c", "");
  std::vector<std::string> Names = Files.names();
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "a.c");
  EXPECT_EQ(Names[2], "z.c");
}

TEST(VfsTest, MissingDiskFile) {
  VFS Files;
  EXPECT_FALSE(Files.addFromDisk("/nonexistent/path/file.c"));
}

//===--- exprToString ----------------------------------------------------------===//

struct ExprPrintCase {
  const char *Expr;
  const char *Printed; // nullptr = same as Expr
};

class ExprPrintTest : public ::testing::TestWithParam<ExprPrintCase> {};

TEST_P(ExprPrintTest, RoundTrips) {
  const ExprPrintCase &C = GetParam();
  Frontend FE;
  std::string Source = std::string("struct s { int f; struct s *n; };\n"
                                   "int g(struct s *p, int a, int b) "
                                   "{ return ") +
                       C.Expr + "; }";
  TranslationUnit *TU = FE.parseSource(Source, "t.c", false);
  ASSERT_TRUE(FE.diags().empty()) << FE.diags().str() << C.Expr;
  FunctionDecl *FD = TU->findFunction("g");
  const auto *RS =
      cast<ReturnStmt>(cast<CompoundStmt>(FD->body())->body()[0]);
  EXPECT_EQ(exprToString(RS->value()), C.Printed ? C.Printed : C.Expr);
}

INSTANTIATE_TEST_SUITE_P(
    Forms, ExprPrintTest,
    ::testing::Values(ExprPrintCase{"a + b * 2", nullptr},
                      ExprPrintCase{"p->n->f", nullptr},
                      ExprPrintCase{"(a + b) / 2", nullptr},
                      ExprPrintCase{"a ? b : 0", nullptr},
                      ExprPrintCase{"!a", nullptr},
                      ExprPrintCase{"*p->n", "*p->n"},
                      ExprPrintCase{"&a", "&a"},
                      ExprPrintCase{"g(p, a, b)", nullptr},
                      ExprPrintCase{"a << 2 | b", nullptr},
                      ExprPrintCase{"sizeof (struct s)", nullptr}));

} // namespace
