//===--- TestUtil.h - Shared helpers for the test suite ---------*- C++ -*-===//
//
// Part of memlint. See DESIGN.md.
//
//===----------------------------------------------------------------------===//

#ifndef MEMLINT_TESTS_TESTUTIL_H
#define MEMLINT_TESTS_TESTUTIL_H

#include "checker/Checker.h"

#include <string>

namespace memlint {
namespace test {

/// Checks an in-memory source with default options.
inline CheckResult check(const std::string &Source) {
  return Checker::checkSource(Source, CheckOptions(), "test.c");
}

/// Checks with one flag overridden.
inline CheckResult checkWithFlag(const std::string &Source,
                                 const std::string &Flag, bool Value) {
  CheckOptions Options;
  Options.Flags.set(Flag, Value);
  return Checker::checkSource(Source, Options, "test.c");
}

/// Number of anomalies of a given class.
inline unsigned countOf(const CheckResult &R, CheckId Id) {
  return R.count(Id);
}

} // namespace test
} // namespace memlint

#endif // MEMLINT_TESTS_TESTUTIL_H
